// Oracle-equivalence suite for PMW's factored round loop: on randomized
// shapes and workloads, the factored loop (sparse sub-box updates, deferred
// normalization, fused average accumulation, incremental answers) must
// produce the same release as the retained straightforward loop, up to
// floating-point associativity. Non-indicator workloads must take the dense
// fallback and still agree; forced rebases and answer refreshes must not
// change the result beyond tolerance.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "query/evaluation.h"
#include "query/factored_tensor.h"
#include "query/workloads.h"
#include "release/pmw.h"
#include "relational/generators.h"
#include "testing/brute_force.h"
#include "testing/queries.h"

namespace dpjoin {
namespace {

struct Case {
  const char* name;
  int kind;  // 0 = two-table, 1 = path3, 2 = star, 3 = single relation
  WorkloadKind workload;
  int64_t per_table;
  uint64_t seed;
};

JoinQuery MakeQueryByKind(int kind) {
  switch (kind) {
    case 0:
      return MakeTwoTableQuery(6, 5, 6);
    case 1:
      return MakePathQuery(3, 4);
    case 2:
      return testing::MakeSmallStarQuery(4, 5, 4);
    default: {
      auto q = JoinQuery::Create({{"A", 24}}, {{"A"}});
      DPJOIN_CHECK(q.ok(), q.status().ToString());
      return std::move(q).value();
    }
  }
}

// Relative ℓ∞ distance between two releases, scaled by the released mass.
double MaxRelDiff(const PmwResult& a, const PmwResult& b) {
  const auto& va = a.synthetic.values();
  const auto& vb = b.synthetic.values();
  EXPECT_EQ(va.size(), vb.size());
  const double scale = std::max(1.0, std::abs(a.noisy_total));
  double worst = 0.0;
  for (size_t i = 0; i < va.size(); ++i) {
    worst = std::max(worst, std::abs(va[i] - vb[i]) / scale);
  }
  return worst;
}

PmwResult RunPmw(const Instance& instance, const QueryFamily& family,
              PmwOptions options, bool factored, uint64_t seed) {
  options.use_factored_loop = factored;
  Rng rng(seed);
  auto result = PrivateMultiplicativeWeights(instance, family, options, rng);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

class PmwFactoredTest : public ::testing::TestWithParam<Case> {};

TEST_P(PmwFactoredTest, FactoredMatchesOracleWithinTolerance) {
  const Case& param = GetParam();
  Rng setup_rng(param.seed);
  const JoinQuery query = MakeQueryByKind(param.kind);
  const Instance instance = testing::RandomInstance(query, 40, setup_rng);
  const QueryFamily family =
      MakeWorkload(query, param.workload, param.per_table, setup_rng);

  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 4.0;
  options.num_rounds = 20;

  const PmwResult oracle =
      RunPmw(instance, family, options, /*factored=*/false, param.seed + 1);
  const PmwResult factored =
      RunPmw(instance, family, options, /*factored=*/true, param.seed + 1);

  // Identical noise stream and selection sequence: the privatized scalars
  // match exactly, the tensors up to fp associativity.
  EXPECT_EQ(factored.noisy_total, oracle.noisy_total);
  EXPECT_EQ(factored.rounds, oracle.rounds);
  EXPECT_EQ(factored.per_round_epsilon, oracle.per_round_epsilon);
  EXPECT_LE(MaxRelDiff(oracle, factored), 1e-9);

  // The loop classified every round.
  EXPECT_EQ(factored.perf.sparse_rounds + factored.perf.dense_rounds +
                factored.perf.scale_only_rounds,
            factored.rounds);
  EXPECT_EQ(static_cast<int64_t>(factored.perf.eval_us.size()),
            factored.rounds);
}

TEST_P(PmwFactoredTest, TraceAndAccountingMatchTheOracle) {
  const Case& param = GetParam();
  Rng setup_rng(param.seed + 7);
  const JoinQuery query = MakeQueryByKind(param.kind);
  const Instance instance = testing::RandomInstance(query, 25, setup_rng);
  const QueryFamily family =
      MakeWorkload(query, param.workload, param.per_table, setup_rng);

  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 4.0;
  options.num_rounds = 8;
  options.record_trace = true;

  const PmwResult oracle =
      RunPmw(instance, family, options, /*factored=*/false, param.seed + 8);
  const PmwResult factored =
      RunPmw(instance, family, options, /*factored=*/true, param.seed + 8);
  ASSERT_EQ(factored.trace.size(), oracle.trace.size());
  for (size_t i = 0; i < oracle.trace.size(); ++i) {
    EXPECT_EQ(factored.trace[i].query_flat, oracle.trace[i].query_flat)
        << "round " << i << " selected a different query";
    EXPECT_EQ(factored.trace[i].measurement, oracle.trace[i].measurement);
    EXPECT_NEAR(factored.trace[i].score, oracle.trace[i].score,
                1e-6 * (1.0 + std::abs(oracle.trace[i].score)));
  }
  EXPECT_EQ(factored.accountant.Total().epsilon,
            oracle.accountant.Total().epsilon);
  EXPECT_EQ(factored.accountant.Total().delta,
            oracle.accountant.Total().delta);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndWorkloads, PmwFactoredTest,
    ::testing::Values(
        // Indicator workloads: the sparse sub-box path.
        Case{"two_table_prefix", 0, WorkloadKind::kPrefix, 4, 901},
        Case{"two_table_point", 0, WorkloadKind::kPoint, 3, 902},
        Case{"path3_marginal", 1, WorkloadKind::kMarginal, 0, 903},
        Case{"star_prefix", 2, WorkloadKind::kPrefix, 3, 904},
        Case{"single_prefix", 3, WorkloadKind::kPrefix, 5, 905},
        // Non-indicator workloads: the dense fused fallback must fire.
        Case{"two_table_sign", 0, WorkloadKind::kRandomSign, 3, 906},
        Case{"path3_uniform", 1, WorkloadKind::kRandomUniform, 2, 907},
        Case{"single_uniform", 3, WorkloadKind::kRandomUniform, 4, 908}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return info.param.name;
    });

TEST(PmwFactoredPathsTest, NonIndicatorWorkloadTakesTheDenseFallback) {
  Rng setup_rng(31);
  const JoinQuery query = MakeTwoTableQuery(5, 4, 5);
  const Instance instance = testing::RandomInstance(query, 30, setup_rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomUniform, 3, setup_rng);
  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 4.0;
  options.num_rounds = 10;
  const PmwResult result =
      RunPmw(instance, family, options, /*factored=*/true, 32);
  // Every selected non-ones query is non-indicator here.
  EXPECT_EQ(result.perf.sparse_rounds, 0);
  EXPECT_EQ(result.perf.dense_rounds + result.perf.scale_only_rounds,
            result.rounds);
}

TEST(PmwFactoredPathsTest, ForcedRebasesAndRefreshesPreserveTheRelease) {
  Rng setup_rng(41);
  const JoinQuery query = MakePathQuery(3, 4);
  const Instance instance = testing::RandomInstance(query, 40, setup_rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kPrefix, 4, setup_rng);
  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 4.0;
  options.num_rounds = 24;

  const PmwResult baseline =
      RunPmw(instance, family, options, /*factored=*/true, 42);

  // Rebase after (almost) every round, refresh every round: pure
  // bookkeeping — the release must stay within tolerance of the default
  // schedule (and of the oracle).
  PmwOptions stressed = options;
  stressed.factored_rebase_log_limit = 1e-6;
  stressed.factored_refresh_rounds = 1;
  const PmwResult rebased =
      RunPmw(instance, family, stressed, /*factored=*/true, 42);
  EXPECT_EQ(rebased.noisy_total, baseline.noisy_total);
  EXPECT_LE(MaxRelDiff(baseline, rebased), 1e-9);

  const PmwResult oracle =
      RunPmw(instance, family, options, /*factored=*/false, 42);
  EXPECT_LE(MaxRelDiff(oracle, rebased), 1e-9);
}

TEST(PmwFactoredPathsTest, LongRunsWithManyRoundsStayFinite) {
  // 300 rounds on a concentrated single-table instance: the raw cells of a
  // frequently-hit box would overflow without the rebase guard; the release
  // must stay finite and close to the oracle.
  auto q = JoinQuery::Create({{"A", 32}}, {{"A"}});
  ASSERT_TRUE(q.ok());
  const JoinQuery query = std::move(q).value();
  Instance instance = Instance::Make(query);
  Rng setup_rng(51);
  for (int64_t t = 0; t < 400; ++t) {
    instance.mutable_relation(0).AddFrequencyByCode(setup_rng.UniformInt(0, 3),
                                                    1);
  }
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kPoint, 6, setup_rng);
  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 1.0;
  options.num_rounds = 300;
  options.max_rounds = 300;
  options.per_round_epsilon_override = 0.25;
  const PmwResult factored =
      RunPmw(instance, family, options, /*factored=*/true, 52);
  for (double v : factored.synthetic.values()) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_GE(v, 0.0);
  }
  const PmwResult oracle =
      RunPmw(instance, family, options, /*factored=*/false, 52);
  EXPECT_LE(MaxRelDiff(oracle, factored), 1e-6);
}

// ----------------------------------------------------------------------
// Product-form backing: PrivateMultiplicativeWeightsFactored must produce
// a release whose workload answers match the dense loop's within 1e-6 on
// densely-feasible domains, for randomized disjoint-factor schemas — and
// must be bit-identical across thread counts.

JoinQuery MakeSingleRelationQuery(const std::vector<int64_t>& radices) {
  std::vector<AttributeSpec> attrs;
  std::vector<std::string> order;
  for (size_t d = 0; d < radices.size(); ++d) {
    const std::string name(1, static_cast<char>('A' + d));
    attrs.push_back({name, radices[d]});
    order.push_back(name);
  }
  auto q = JoinQuery::Create(attrs, {order});
  DPJOIN_CHECK(q.ok(), q.status().ToString());
  return std::move(q).value();
}

PmwResult RunFactoredPmw(const Instance& instance, const QueryFamily& family,
                         const std::vector<std::vector<size_t>>& groups,
                         PmwOptions options, uint64_t seed) {
  Rng rng(seed);
  auto result = PrivateMultiplicativeWeightsFactored(instance, family, groups,
                                                     options, rng);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

struct BackingCase {
  const char* name;
  std::vector<int64_t> radices;
  WorkloadKind workload;
  int64_t per_table;
  uint64_t seed;
};

class ProductBackingTest : public ::testing::TestWithParam<BackingCase> {};

TEST_P(ProductBackingTest, MatchesDenseLoopWithinTolerance) {
  const BackingCase& param = GetParam();
  Rng setup_rng(param.seed);
  const JoinQuery query = MakeSingleRelationQuery(param.radices);
  const Instance instance = testing::RandomInstance(query, 60, setup_rng);
  const QueryFamily family =
      MakeWorkload(query, param.workload, param.per_table, setup_rng);
  const WorkloadFactorization wf = ComputeWorkloadFactorization(query, family);
  ASSERT_TRUE(wf.product_form) << wf.reason;

  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 1.0;
  options.num_rounds = 16;

  const PmwResult dense =
      RunPmw(instance, family, options, /*factored=*/true, param.seed + 1);
  const PmwResult factored =
      RunFactoredPmw(instance, family, wf.groups, options, param.seed + 1);

  // Identical noise stream: the privatized scalars agree exactly.
  EXPECT_EQ(factored.noisy_total, dense.noisy_total);
  EXPECT_EQ(factored.rounds, dense.rounds);
  EXPECT_EQ(factored.per_round_epsilon, dense.per_round_epsilon);
  ASSERT_NE(factored.factored_synthetic, nullptr);
  ASSERT_NE(factored.evaluator, nullptr);
  EXPECT_TRUE(factored.evaluator->factored());

  // The factored release answers the (densely-feasible) workload within
  // 1e-6 of the dense release, relative to the released mass. The dense
  // release lives on the one-mode release domain and the factored one on
  // the attribute tuple space, but for m = 1 the flat indexing agrees.
  const std::vector<double> want = EvaluateAllOnTensor(family, dense.synthetic);
  const std::vector<double> got =
      factored.evaluator->EvaluateAllFactored(*factored.factored_synthetic);
  ASSERT_EQ(got.size(), want.size());
  const double scale = std::max(1.0, std::abs(dense.noisy_total));
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-6 * scale) << "query " << i;
  }

  // Total mass is the (fixed) privatized total in both backings.
  EXPECT_NEAR(factored.factored_synthetic->TotalMass(), factored.noisy_total,
              1e-6 * scale);
  // Memory really is the sum of factor sizes.
  EXPECT_EQ(factored.factored_synthetic->StorageCells(),
            static_cast<int64_t>(wf.sum_cells));
}

TEST_P(ProductBackingTest, BitIdenticalAcrossThreadCounts) {
  const BackingCase& param = GetParam();
  Rng setup_rng(param.seed + 3);
  const JoinQuery query = MakeSingleRelationQuery(param.radices);
  const Instance instance = testing::RandomInstance(query, 50, setup_rng);
  const QueryFamily family =
      MakeWorkload(query, param.workload, param.per_table, setup_rng);
  const WorkloadFactorization wf = ComputeWorkloadFactorization(query, family);
  ASSERT_TRUE(wf.product_form) << wf.reason;

  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 1.0;
  options.num_rounds = 12;

  options.num_threads = 1;
  const PmwResult base =
      RunFactoredPmw(instance, family, wf.groups, options, param.seed + 4);
  ASSERT_NE(base.factored_synthetic, nullptr);
  for (const int threads : {2, 8}) {
    options.num_threads = threads;
    const PmwResult other =
        RunFactoredPmw(instance, family, wf.groups, options, param.seed + 4);
    ASSERT_NE(other.factored_synthetic, nullptr);
    EXPECT_EQ(other.noisy_total, base.noisy_total);
    ASSERT_EQ(other.factored_synthetic->num_factors(),
              base.factored_synthetic->num_factors());
    for (size_t k = 0; k < base.factored_synthetic->num_factors(); ++k) {
      const auto& fb = base.factored_synthetic->factor(k);
      const auto& fo = other.factored_synthetic->factor(k);
      ASSERT_EQ(fo.values.size(), fb.values.size());
      for (size_t i = 0; i < fb.values.size(); ++i) {
        ASSERT_EQ(fo.values[i], fb.values[i])
            << "threads=" << threads << " factor " << k << " cell " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedSchemas, ProductBackingTest,
    ::testing::Values(
        // Marginal workloads split every attribute into its own factor.
        BackingCase{"marginals_433", {4, 3, 3}, WorkloadKind::kMarginalAll, 0,
                    1201},
        BackingCase{"marginals_5224", {5, 2, 2, 4}, WorkloadKind::kMarginalAll,
                    0, 1202},
        BackingCase{"marginals_62", {6, 2}, WorkloadKind::kMarginalAll, 0,
                    1203},
        // Point workloads clique all attributes into one (dense) factor.
        BackingCase{"points_432", {4, 3, 2}, WorkloadKind::kPoint, 4, 1204},
        BackingCase{"points_333", {3, 3, 3}, WorkloadKind::kPoint, 3, 1205}),
    [](const ::testing::TestParamInfo<BackingCase>& info) {
      return info.param.name;
    });

TEST(ProductBackingPathsTest, HugeDomainRunsEndToEnd) {
  // 10 attributes of size 16: 2^40 cells. The dense loop cannot even
  // allocate this; the factored loop runs in 160 stored doubles.
  const JoinQuery query =
      MakeSingleRelationQuery(std::vector<int64_t>(10, 16));
  Rng setup_rng(77);
  Instance instance = Instance::Make(query);
  for (int64_t t = 0; t < 200; ++t) {
    instance.mutable_relation(0).AddFrequencyByCode(
        setup_rng.UniformInt(0, int64_t{1} << 30), 1);
  }
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kMarginalAll, 0, setup_rng);
  const WorkloadFactorization wf = ComputeWorkloadFactorization(query, family);
  ASSERT_TRUE(wf.product_form) << wf.reason;
  ASSERT_EQ(wf.groups.size(), 10u);

  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 1.0;
  options.num_rounds = 12;
  const PmwResult result =
      RunFactoredPmw(instance, family, wf.groups, options, 78);
  ASSERT_NE(result.factored_synthetic, nullptr);
  EXPECT_EQ(result.factored_synthetic->StorageCells(), 160);
  EXPECT_DOUBLE_EQ(result.factored_synthetic->DomainCells(),
                   std::pow(2.0, 40.0));
  const std::vector<double> answers =
      result.evaluator->EvaluateAllFactored(*result.factored_synthetic);
  EXPECT_EQ(static_cast<int64_t>(answers.size()), family.TotalCount());
  for (const double a : answers) {
    ASSERT_TRUE(std::isfinite(a));
  }
  // The all-ones query's answer is the released total.
  EXPECT_NEAR(answers[0], result.noisy_total,
              1e-6 * std::max(1.0, std::abs(result.noisy_total)));
}

TEST(ProductBackingPathsTest, MultiRelationReleaseIsRefused) {
  Rng setup_rng(91);
  const JoinQuery query = MakeTwoTableQuery(4, 3, 4);
  const Instance instance = testing::RandomInstance(query, 20, setup_rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kMarginal, 0, setup_rng);
  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 1.0;
  Rng rng(92);
  auto result = PrivateMultiplicativeWeightsFactored(
      instance, family, {{0}}, options, rng);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dpjoin
