// Oracle-equivalence suite for PMW's factored round loop: on randomized
// shapes and workloads, the factored loop (sparse sub-box updates, deferred
// normalization, fused average accumulation, incremental answers) must
// produce the same release as the retained straightforward loop, up to
// floating-point associativity. Non-indicator workloads must take the dense
// fallback and still agree; forced rebases and answer refreshes must not
// change the result beyond tolerance.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "query/workloads.h"
#include "release/pmw.h"
#include "relational/generators.h"
#include "testing/brute_force.h"
#include "testing/queries.h"

namespace dpjoin {
namespace {

struct Case {
  const char* name;
  int kind;  // 0 = two-table, 1 = path3, 2 = star, 3 = single relation
  WorkloadKind workload;
  int64_t per_table;
  uint64_t seed;
};

JoinQuery MakeQueryByKind(int kind) {
  switch (kind) {
    case 0:
      return MakeTwoTableQuery(6, 5, 6);
    case 1:
      return MakePathQuery(3, 4);
    case 2:
      return testing::MakeSmallStarQuery(4, 5, 4);
    default: {
      auto q = JoinQuery::Create({{"A", 24}}, {{"A"}});
      DPJOIN_CHECK(q.ok(), q.status().ToString());
      return std::move(q).value();
    }
  }
}

// Relative ℓ∞ distance between two releases, scaled by the released mass.
double MaxRelDiff(const PmwResult& a, const PmwResult& b) {
  const auto& va = a.synthetic.values();
  const auto& vb = b.synthetic.values();
  EXPECT_EQ(va.size(), vb.size());
  const double scale = std::max(1.0, std::abs(a.noisy_total));
  double worst = 0.0;
  for (size_t i = 0; i < va.size(); ++i) {
    worst = std::max(worst, std::abs(va[i] - vb[i]) / scale);
  }
  return worst;
}

PmwResult RunPmw(const Instance& instance, const QueryFamily& family,
              PmwOptions options, bool factored, uint64_t seed) {
  options.use_factored_loop = factored;
  Rng rng(seed);
  auto result = PrivateMultiplicativeWeights(instance, family, options, rng);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

class PmwFactoredTest : public ::testing::TestWithParam<Case> {};

TEST_P(PmwFactoredTest, FactoredMatchesOracleWithinTolerance) {
  const Case& param = GetParam();
  Rng setup_rng(param.seed);
  const JoinQuery query = MakeQueryByKind(param.kind);
  const Instance instance = testing::RandomInstance(query, 40, setup_rng);
  const QueryFamily family =
      MakeWorkload(query, param.workload, param.per_table, setup_rng);

  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 4.0;
  options.num_rounds = 20;

  const PmwResult oracle =
      RunPmw(instance, family, options, /*factored=*/false, param.seed + 1);
  const PmwResult factored =
      RunPmw(instance, family, options, /*factored=*/true, param.seed + 1);

  // Identical noise stream and selection sequence: the privatized scalars
  // match exactly, the tensors up to fp associativity.
  EXPECT_EQ(factored.noisy_total, oracle.noisy_total);
  EXPECT_EQ(factored.rounds, oracle.rounds);
  EXPECT_EQ(factored.per_round_epsilon, oracle.per_round_epsilon);
  EXPECT_LE(MaxRelDiff(oracle, factored), 1e-9);

  // The loop classified every round.
  EXPECT_EQ(factored.perf.sparse_rounds + factored.perf.dense_rounds +
                factored.perf.scale_only_rounds,
            factored.rounds);
  EXPECT_EQ(static_cast<int64_t>(factored.perf.eval_us.size()),
            factored.rounds);
}

TEST_P(PmwFactoredTest, TraceAndAccountingMatchTheOracle) {
  const Case& param = GetParam();
  Rng setup_rng(param.seed + 7);
  const JoinQuery query = MakeQueryByKind(param.kind);
  const Instance instance = testing::RandomInstance(query, 25, setup_rng);
  const QueryFamily family =
      MakeWorkload(query, param.workload, param.per_table, setup_rng);

  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 4.0;
  options.num_rounds = 8;
  options.record_trace = true;

  const PmwResult oracle =
      RunPmw(instance, family, options, /*factored=*/false, param.seed + 8);
  const PmwResult factored =
      RunPmw(instance, family, options, /*factored=*/true, param.seed + 8);
  ASSERT_EQ(factored.trace.size(), oracle.trace.size());
  for (size_t i = 0; i < oracle.trace.size(); ++i) {
    EXPECT_EQ(factored.trace[i].query_flat, oracle.trace[i].query_flat)
        << "round " << i << " selected a different query";
    EXPECT_EQ(factored.trace[i].measurement, oracle.trace[i].measurement);
    EXPECT_NEAR(factored.trace[i].score, oracle.trace[i].score,
                1e-6 * (1.0 + std::abs(oracle.trace[i].score)));
  }
  EXPECT_EQ(factored.accountant.Total().epsilon,
            oracle.accountant.Total().epsilon);
  EXPECT_EQ(factored.accountant.Total().delta,
            oracle.accountant.Total().delta);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndWorkloads, PmwFactoredTest,
    ::testing::Values(
        // Indicator workloads: the sparse sub-box path.
        Case{"two_table_prefix", 0, WorkloadKind::kPrefix, 4, 901},
        Case{"two_table_point", 0, WorkloadKind::kPoint, 3, 902},
        Case{"path3_marginal", 1, WorkloadKind::kMarginal, 0, 903},
        Case{"star_prefix", 2, WorkloadKind::kPrefix, 3, 904},
        Case{"single_prefix", 3, WorkloadKind::kPrefix, 5, 905},
        // Non-indicator workloads: the dense fused fallback must fire.
        Case{"two_table_sign", 0, WorkloadKind::kRandomSign, 3, 906},
        Case{"path3_uniform", 1, WorkloadKind::kRandomUniform, 2, 907},
        Case{"single_uniform", 3, WorkloadKind::kRandomUniform, 4, 908}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return info.param.name;
    });

TEST(PmwFactoredPathsTest, NonIndicatorWorkloadTakesTheDenseFallback) {
  Rng setup_rng(31);
  const JoinQuery query = MakeTwoTableQuery(5, 4, 5);
  const Instance instance = testing::RandomInstance(query, 30, setup_rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomUniform, 3, setup_rng);
  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 4.0;
  options.num_rounds = 10;
  const PmwResult result =
      RunPmw(instance, family, options, /*factored=*/true, 32);
  // Every selected non-ones query is non-indicator here.
  EXPECT_EQ(result.perf.sparse_rounds, 0);
  EXPECT_EQ(result.perf.dense_rounds + result.perf.scale_only_rounds,
            result.rounds);
}

TEST(PmwFactoredPathsTest, ForcedRebasesAndRefreshesPreserveTheRelease) {
  Rng setup_rng(41);
  const JoinQuery query = MakePathQuery(3, 4);
  const Instance instance = testing::RandomInstance(query, 40, setup_rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kPrefix, 4, setup_rng);
  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 4.0;
  options.num_rounds = 24;

  const PmwResult baseline =
      RunPmw(instance, family, options, /*factored=*/true, 42);

  // Rebase after (almost) every round, refresh every round: pure
  // bookkeeping — the release must stay within tolerance of the default
  // schedule (and of the oracle).
  PmwOptions stressed = options;
  stressed.factored_rebase_log_limit = 1e-6;
  stressed.factored_refresh_rounds = 1;
  const PmwResult rebased =
      RunPmw(instance, family, stressed, /*factored=*/true, 42);
  EXPECT_EQ(rebased.noisy_total, baseline.noisy_total);
  EXPECT_LE(MaxRelDiff(baseline, rebased), 1e-9);

  const PmwResult oracle =
      RunPmw(instance, family, options, /*factored=*/false, 42);
  EXPECT_LE(MaxRelDiff(oracle, rebased), 1e-9);
}

TEST(PmwFactoredPathsTest, LongRunsWithManyRoundsStayFinite) {
  // 300 rounds on a concentrated single-table instance: the raw cells of a
  // frequently-hit box would overflow without the rebase guard; the release
  // must stay finite and close to the oracle.
  auto q = JoinQuery::Create({{"A", 32}}, {{"A"}});
  ASSERT_TRUE(q.ok());
  const JoinQuery query = std::move(q).value();
  Instance instance = Instance::Make(query);
  Rng setup_rng(51);
  for (int64_t t = 0; t < 400; ++t) {
    instance.mutable_relation(0).AddFrequencyByCode(setup_rng.UniformInt(0, 3),
                                                    1);
  }
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kPoint, 6, setup_rng);
  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 1.0;
  options.num_rounds = 300;
  options.max_rounds = 300;
  options.per_round_epsilon_override = 0.25;
  const PmwResult factored =
      RunPmw(instance, family, options, /*factored=*/true, 52);
  for (double v : factored.synthetic.values()) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_GE(v, 0.0);
  }
  const PmwResult oracle =
      RunPmw(instance, family, options, /*factored=*/false, 52);
  EXPECT_LE(MaxRelDiff(oracle, factored), 1e-6);
}

}  // namespace
}  // namespace dpjoin
