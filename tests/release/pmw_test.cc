#include "release/pmw.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/theory_bounds.h"
#include "dp/truncated_laplace.h"
#include "query/workloads.h"
#include "relational/generators.h"
#include "relational/join.h"
#include "relational/join_query.h"
#include "sensitivity/local_sensitivity.h"
#include "testing/brute_force.h"

namespace dpjoin {
namespace {

PmwOptions DefaultOptions(double delta_tilde) {
  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = delta_tilde;
  return options;
}

TEST(PmwTest, RejectsBadArguments) {
  Rng rng(1);
  const JoinQuery query = MakeTwoTableQuery(2, 2, 2);
  const Instance instance = Instance::Make(query);
  const QueryFamily family = MakeCountingFamily(query);
  PmwOptions options = DefaultOptions(0.0);
  EXPECT_TRUE(PrivateMultiplicativeWeights(instance, family, options, rng)
                  .status()
                  .IsInvalidArgument());
  options.delta_tilde = 1.0;
  options.params.delta = 0.0;
  EXPECT_TRUE(PrivateMultiplicativeWeights(instance, family, options, rng)
                  .status()
                  .IsInvalidArgument());
}

TEST(PmwTest, OutputMassEqualsNoisyTotal) {
  Rng rng(2);
  const JoinQuery query = MakeTwoTableQuery(4, 4, 4);
  const Instance instance = testing::RandomInstance(query, 20, rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 3, rng);
  auto result = PrivateMultiplicativeWeights(
      instance, family, DefaultOptions(LocalSensitivity(instance) + 1), rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->synthetic.TotalMass(), result->noisy_total,
              1e-6 * std::max(1.0, result->noisy_total));
  // Noisy total is count + TLap ≥ count (non-negative noise).
  EXPECT_GE(result->noisy_total, result->exact_count - 1e-9);
}

TEST(PmwTest, SyntheticIsNonNegative) {
  Rng rng(3);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const Instance instance = testing::RandomInstance(query, 10, rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomUniform, 2, rng);
  auto result = PrivateMultiplicativeWeights(instance, family,
                                             DefaultOptions(5.0), rng);
  ASSERT_TRUE(result.ok());
  for (double v : result->synthetic.values()) EXPECT_GE(v, 0.0);
}

TEST(PmwTest, EmptyInstanceReleasesBoundedMass) {
  Rng rng(4);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const Instance instance = Instance::Make(query);
  const QueryFamily family = MakeCountingFamily(query);
  auto result = PrivateMultiplicativeWeights(instance, family,
                                             DefaultOptions(1.0), rng);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->exact_count, 0.0);
  // Mass is pure TLap noise: within [0, 2τ(ε/2, δ/2, 1)].
  const double tau = TruncatedLaplaceTau(0.5, 5e-6, 1.0);
  EXPECT_LE(result->synthetic.TotalMass(), 2.0 * tau + 1e-9);
}

TEST(PmwTest, TheoryRoundsClampAndScale) {
  EXPECT_EQ(PmwTheoryRounds(0.0, 1.0, 1e-5, 1.0, 4096.0, 64.0, 50), 1);
  EXPECT_EQ(PmwTheoryRounds(1e9, 1.0, 1e-5, 1.0, 4096.0, 64.0, 50), 50);
  const int64_t k_small = PmwTheoryRounds(100.0, 1.0, 1e-5, 10.0, 4096.0,
                                          64.0, 1000);
  const int64_t k_large = PmwTheoryRounds(10000.0, 1.0, 1e-5, 10.0, 4096.0,
                                          64.0, 1000);
  EXPECT_GT(k_large, k_small);  // more mass ⇒ more rounds
}

TEST(PmwTest, RoundOverrideRespected) {
  Rng rng(5);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const Instance instance = testing::RandomInstance(query, 10, rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 2, rng);
  PmwOptions options = DefaultOptions(5.0);
  options.num_rounds = 7;
  options.record_trace = true;
  auto result =
      PrivateMultiplicativeWeights(instance, family, options, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rounds, 7);
  EXPECT_EQ(result->trace.size(), 7u);
  // Algorithm 2 line 3 uses the FULL (ε, δ) of the PMW invocation.
  EXPECT_DOUBLE_EQ(result->per_round_epsilon,
                   PmwPerRoundEpsilon(1.0, 1e-5, 7));
}

TEST(PmwTest, AccountsItsBudgetInTwoHalves) {
  Rng rng(6);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const Instance instance = testing::RandomInstance(query, 10, rng);
  const QueryFamily family = MakeCountingFamily(query);
  auto result = PrivateMultiplicativeWeights(instance, family,
                                             DefaultOptions(3.0), rng);
  ASSERT_TRUE(result.ok());
  const PrivacyParams total = result->accountant.Total();
  EXPECT_NEAR(total.epsilon, 1.0, 1e-12);
  EXPECT_NEAR(total.delta, 1e-5, 1e-15);
}

TEST(PmwTest, DegenerateEmptyJoinStillAccountsFullBudget) {
  // Regression: the noisy_total <= 0 early return used to record only the
  // (ε/2, δ/2) noisy-total spend, so callers summing the ledger saw half
  // the budget the mechanism was actually charged.
  Rng rng(61);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const Instance instance = Instance::Make(query);  // empty: count(I) = 0
  const QueryFamily family = MakeCountingFamily(query);
  PmwOptions options = DefaultOptions(2.0);
  options.leak_exact_total = true;  // noisy_total = exact_count = 0 exactly
  auto result = PrivateMultiplicativeWeights(instance, family, options, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->exact_count, 0.0);
  EXPECT_DOUBLE_EQ(result->noisy_total, 0.0);
  // No rounds ran, and the result fields say so explicitly.
  EXPECT_EQ(result->rounds, 0);
  EXPECT_DOUBLE_EQ(result->per_round_epsilon, 0.0);
  EXPECT_TRUE(result->trace.empty());
  // The ledger still shows the full (ε, δ) the mechanism was charged.
  const PrivacyParams total = result->accountant.Total();
  EXPECT_NEAR(total.epsilon, options.params.epsilon, 1e-12);
  EXPECT_NEAR(total.delta, options.params.delta, 1e-15);
  // The released synthetic dataset is the all-zero tensor.
  for (double v : result->synthetic.values()) EXPECT_EQ(v, 0.0);
}

TEST(PmwTest, ImprovesOverUniformPriorOnSkewedData) {
  // PMW should answer queries much better than the uniform initialization
  // F_0 when the join is concentrated. The paper's ε′ constant (16·√(k·ln
  // 1/δ)) swamps any domain this small, so this utility test overrides ε′ —
  // it checks the multiplicative-weights dynamics, not the DP calibration.
  Rng rng(7);
  const JoinQuery query = MakeTwoTableQuery(4, 4, 4);
  Instance instance = Instance::Make(query);
  // All mass on one join cell: (a0,b0) ⋈ (b0,c0), multiplicity 30·30.
  ASSERT_TRUE(instance.AddTuple(0, {0, 0}, 30).ok());
  ASSERT_TRUE(instance.AddTuple(1, {0, 0}, 30).ok());
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kPrefix, 4, rng);

  PmwOptions options = DefaultOptions(LocalSensitivity(instance) + 1);
  options.num_rounds = 24;
  options.per_round_epsilon_override = 0.5;
  // Leak the exact total: with the TLap mask, BOTH PMW and the uniform
  // baseline carry the same irreducible count error (total mass is fixed),
  // which would hide the multiplicative-weights improvement entirely.
  options.leak_exact_total = true;
  auto result =
      PrivateMultiplicativeWeights(instance, family, options, rng);
  ASSERT_TRUE(result.ok());

  const auto answers_instance = EvaluateAllOnInstance(family, instance);
  const auto answers_pmw = EvaluateAllOnTensor(family, result->synthetic);
  DenseTensor uniform(result->synthetic.shape());
  uniform.Fill(result->noisy_total / static_cast<double>(uniform.size()));
  const auto answers_uniform = EvaluateAllOnTensor(family, uniform);
  const double err_pmw = MaxAbsDifference(answers_instance, answers_pmw);
  const double err_uniform =
      MaxAbsDifference(answers_instance, answers_uniform);
  EXPECT_LT(err_pmw, 0.7 * err_uniform);
}

TEST(PmwTest, ErrorWithinTheoremA1BoundWithMargin) {
  // Shape check of Theorem A.1 on seeds: measured ℓ∞ error ≤ C·bound with a
  // generous constant (the bound has unstated constants).
  const JoinQuery query = MakeTwoTableQuery(4, 4, 4);
  for (uint64_t seed : {11u, 12u, 13u}) {
    Rng rng(seed);
    const Instance instance = testing::RandomInstance(query, 40, rng);
    const QueryFamily family =
        MakeWorkload(query, WorkloadKind::kRandomSign, 3, rng);
    const double delta_tilde = LocalSensitivity(instance) + 1.0;
    auto result = PrivateMultiplicativeWeights(
        instance, family, DefaultOptions(delta_tilde), rng);
    ASSERT_TRUE(result.ok());
    const double error = WorkloadError(family, instance, result->synthetic);
    const double bound = PmwUpperBound(
        JoinCount(instance), delta_tilde,
        static_cast<double>(result->synthetic.size()),
        static_cast<double>(family.TotalCount()), PrivacyParams(1.0, 1e-5));
    EXPECT_LE(error, 3.0 * bound) << "seed " << seed;
  }
}

TEST(PmwTest, DeterministicGivenSeed) {
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  Rng data_rng(8);
  const Instance instance = testing::RandomInstance(query, 10, data_rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 2, data_rng);
  Rng rng1(99), rng2(99);
  auto a = PrivateMultiplicativeWeights(instance, family,
                                        DefaultOptions(4.0), rng1);
  auto b = PrivateMultiplicativeWeights(instance, family,
                                        DefaultOptions(4.0), rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->synthetic.values(), b->synthetic.values());
}

}  // namespace
}  // namespace dpjoin
