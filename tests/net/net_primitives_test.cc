// Unit tests for the src/net layer: RAII sockets, the epoll/poll
// readiness multiplexer (both backends, on Linux), line framing over
// non-blocking sockets, and the self-pipe wakeup.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/line_channel.h"
#include "net/poller.h"
#include "net/socket.h"

namespace dpjoin {
namespace {

// Listener + connected client/server socket pair on 127.0.0.1.
struct TcpPair {
  Socket listener;
  Socket client;  // blocking
  Socket server;  // non-blocking (as accepted)
};

TcpPair MakePair() {
  TcpPair pair;
  auto listener = ListenTcp(0);
  EXPECT_TRUE(listener.ok()) << listener.status();
  pair.listener = std::move(listener).value();
  auto port = LocalPort(pair.listener);
  EXPECT_TRUE(port.ok()) << port.status();
  auto client = ConnectTcp("127.0.0.1", *port);
  EXPECT_TRUE(client.ok()) << client.status();
  pair.client = std::move(client).value();
  // The connect has completed, so the accept must eventually see it.
  for (int i = 0; i < 1000; ++i) {
    auto accepted = AcceptConnection(pair.listener);
    EXPECT_TRUE(accepted.ok()) << accepted.status();
    if (accepted->valid()) {
      pair.server = std::move(accepted).value();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(pair.server.valid()) << "accept never saw the connection";
  return pair;
}

TEST(SocketTest, ListenConnectAcceptRoundTrip) {
  TcpPair pair = MakePair();
  ASSERT_TRUE(pair.server.valid());

  const std::string ping = "ping";
  auto sent = pair.client.Write(ping.data(), ping.size());
  ASSERT_TRUE(sent.ok()) << sent.status();
  EXPECT_EQ(*sent, static_cast<int64_t>(ping.size()));

  char buf[16] = {};
  int64_t got = -1;
  for (int i = 0; i < 1000 && got <= 0; ++i) {
    auto n = pair.server.Read(buf, sizeof(buf));
    ASSERT_TRUE(n.ok()) << n.status();
    got = *n;
    if (got == -1) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(std::string(buf, static_cast<size_t>(got)), ping);

  // Close the client: the server side must observe clean EOF (0), not an
  // error.
  pair.client.Close();
  int64_t eof = -1;
  for (int i = 0; i < 1000 && eof == -1; ++i) {
    auto n = pair.server.Read(buf, sizeof(buf));
    ASSERT_TRUE(n.ok()) << n.status();
    eof = *n;
    if (eof == -1) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(eof, 0);
}

TEST(SocketTest, AcceptWithNothingPendingReturnsInvalid) {
  auto listener = ListenTcp(0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  auto accepted = AcceptConnection(*listener);
  ASSERT_TRUE(accepted.ok()) << accepted.status();
  EXPECT_FALSE(accepted->valid());
}

TEST(SocketTest, ConnectToClosedPortFails) {
  // Bind a port, learn it, close it — connecting afterwards must be a
  // clean Status, not a hang or crash.
  uint16_t port = 0;
  {
    auto listener = ListenTcp(0);
    ASSERT_TRUE(listener.ok());
    auto bound = LocalPort(*listener);
    ASSERT_TRUE(bound.ok());
    port = *bound;
    ASSERT_NE(port, 0);
  }
  auto client = ConnectTcp("127.0.0.1", port);
  EXPECT_FALSE(client.ok());
}

class PollerBackendTest
    : public ::testing::TestWithParam<Poller::Backend> {};

TEST_P(PollerBackendTest, ReportsReadabilityAndRemoval) {
  Poller poller(GetParam());
#if defined(__linux__)
  EXPECT_EQ(poller.backend(), GetParam());
#endif
  WakePipe wake;
  ASSERT_TRUE(poller.Add(wake.read_fd(), true, false).ok());
  EXPECT_EQ(poller.num_watched(), 1u);

  std::vector<Poller::Event> events;
  // Nothing pending: an immediate wait times out empty.
  ASSERT_TRUE(poller.Wait(0, &events).ok());
  EXPECT_TRUE(events.empty());

  wake.Notify();
  ASSERT_TRUE(poller.Wait(1000, &events).ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, wake.read_fd());
  EXPECT_TRUE(events[0].readable);
  EXPECT_FALSE(events[0].error);

  wake.Drain();
  ASSERT_TRUE(poller.Wait(0, &events).ok());
  EXPECT_TRUE(events.empty()) << "Drain must clear readability";

  // Dropping read interest silences the fd even when data is pending.
  wake.Notify();
  ASSERT_TRUE(poller.Update(wake.read_fd(), false, false).ok());
  ASSERT_TRUE(poller.Wait(0, &events).ok());
  EXPECT_TRUE(events.empty());

  ASSERT_TRUE(poller.Remove(wake.read_fd()).ok());
  EXPECT_EQ(poller.num_watched(), 0u);
  EXPECT_FALSE(poller.Remove(wake.read_fd()).ok()) << "double remove";
  EXPECT_FALSE(poller.Update(wake.read_fd(), true, false).ok());
}

TEST_P(PollerBackendTest, RejectsDuplicateAdd) {
  Poller poller(GetParam());
  WakePipe wake;
  ASSERT_TRUE(poller.Add(wake.read_fd(), true, false).ok());
  EXPECT_FALSE(poller.Add(wake.read_fd(), true, false).ok());
}

TEST_P(PollerBackendTest, ReportsWritability) {
  Poller poller(GetParam());
  TcpPair pair = MakePair();
  ASSERT_TRUE(pair.server.valid());
  ASSERT_TRUE(poller.Add(pair.server.fd(), false, true).ok());
  std::vector<Poller::Event> events;
  ASSERT_TRUE(poller.Wait(1000, &events).ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].writable) << "fresh socket has buffer space";
}

INSTANTIATE_TEST_SUITE_P(Backends, PollerBackendTest,
                         ::testing::Values(Poller::Backend::kEpoll,
                                           Poller::Backend::kPoll));

TEST(LineChannelTest, ReassemblesSplitLinesAndStripsCrlf) {
  TcpPair pair = MakePair();
  ASSERT_TRUE(pair.server.valid());
  LineChannel channel(std::move(pair.server));

  const std::string part1 = "alpha\r\nbe";
  ASSERT_TRUE(pair.client.Write(part1.data(), part1.size()).ok());
  std::vector<std::string> lines;
  for (int i = 0; i < 1000 && lines.empty(); ++i) {
    ASSERT_EQ(channel.ReadLines(&lines), LineChannel::ReadState::kOpen);
    if (lines.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_EQ(lines.size(), 1u) << "half a line must not be delivered";
  EXPECT_EQ(lines[0], "alpha");

  const std::string part2 = "ta\ngamma\n";
  ASSERT_TRUE(pair.client.Write(part2.data(), part2.size()).ok());
  lines.clear();
  for (int i = 0; i < 1000 && lines.size() < 2; ++i) {
    ASSERT_EQ(channel.ReadLines(&lines), LineChannel::ReadState::kOpen);
    if (lines.size() < 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "beta");
  EXPECT_EQ(lines[1], "gamma");
  EXPECT_EQ(channel.lines_read(), 3);

  pair.client.Close();
  lines.clear();
  LineChannel::ReadState state = LineChannel::ReadState::kOpen;
  for (int i = 0; i < 1000 && state == LineChannel::ReadState::kOpen; ++i) {
    state = channel.ReadLines(&lines);
    if (state == LineChannel::ReadState::kOpen) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(state, LineChannel::ReadState::kEof);
}

TEST(LineChannelTest, OversizedLineIsAnError) {
  TcpPair pair = MakePair();
  ASSERT_TRUE(pair.server.valid());
  LineChannel channel(std::move(pair.server), /*max_line_bytes=*/64);
  const std::string flood(256, 'x');  // no newline: unbounded "line"
  ASSERT_TRUE(pair.client.Write(flood.data(), flood.size()).ok());
  std::vector<std::string> lines;
  LineChannel::ReadState state = LineChannel::ReadState::kOpen;
  for (int i = 0; i < 1000 && state == LineChannel::ReadState::kOpen; ++i) {
    state = channel.ReadLines(&lines);
    if (state == LineChannel::ReadState::kOpen) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(state, LineChannel::ReadState::kError);
  EXPECT_TRUE(lines.empty());
  // The error state is sticky.
  EXPECT_EQ(channel.ReadLines(&lines), LineChannel::ReadState::kError);
}

TEST(LineChannelTest, QueuedLinesReachABlockingReader) {
  TcpPair pair = MakePair();
  ASSERT_TRUE(pair.server.valid());
  LineChannel channel(std::move(pair.server));
  channel.QueueLine("first");
  channel.QueueLine("second");
  EXPECT_TRUE(channel.wants_write());
  // Two lines comfortably fit the socket buffer: one flush drains them.
  ASSERT_EQ(channel.FlushWrites(), LineChannel::ReadState::kOpen);
  EXPECT_FALSE(channel.wants_write());
  EXPECT_EQ(channel.lines_written(), 2);

  char buf[64] = {};
  size_t total = 0;
  while (total < 13) {
    auto n = pair.client.Read(buf + total, sizeof(buf) - total);
    ASSERT_TRUE(n.ok()) << n.status();
    ASSERT_GT(*n, 0);
    total += static_cast<size_t>(*n);
  }
  EXPECT_EQ(std::string(buf, total), "first\nsecond\n");
}

TEST(LineClientTest, TalksToALineChannelPeer) {
  TcpPair pair = MakePair();
  ASSERT_TRUE(pair.server.valid());
  LineChannel server_side(std::move(pair.server));
  // Hand the connected client socket to a LineClient via a fresh connect:
  // simplest is a dedicated pair — connect a LineClient to the listener.
  auto port = LocalPort(pair.listener);
  ASSERT_TRUE(port.ok());
  auto client = LineClient::Connect("127.0.0.1", *port);
  ASSERT_TRUE(client.ok()) << client.status();
  Socket peer;
  for (int i = 0; i < 1000 && !peer.valid(); ++i) {
    auto accepted = AcceptConnection(pair.listener);
    ASSERT_TRUE(accepted.ok());
    if (accepted->valid()) {
      peer = std::move(accepted).value();
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(peer.valid());
  std::optional<LineChannel> echo(std::in_place, std::move(peer));

  ASSERT_TRUE(client->SendLine("hello over tcp").ok());
  std::vector<std::string> lines;
  for (int i = 0; i < 1000 && lines.empty(); ++i) {
    ASSERT_EQ(echo->ReadLines(&lines), LineChannel::ReadState::kOpen);
    if (lines.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "hello over tcp");

  echo->QueueLine("echo: " + lines[0]);
  ASSERT_EQ(echo->FlushWrites(), LineChannel::ReadState::kOpen);
  auto reply = client->ReadLine();
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(*reply, "echo: hello over tcp");

  // Half-close: the peer sees EOF, the client can still read a goodbye.
  ASSERT_TRUE(client->FinishWriting().ok());
  lines.clear();
  LineChannel::ReadState state = LineChannel::ReadState::kOpen;
  for (int i = 0; i < 1000 && state == LineChannel::ReadState::kOpen; ++i) {
    state = echo->ReadLines(&lines);
    if (state == LineChannel::ReadState::kOpen) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(state, LineChannel::ReadState::kEof);
  echo->QueueLine("goodbye");
  ASSERT_EQ(echo->FlushWrites(), LineChannel::ReadState::kOpen);
  auto goodbye = client->ReadLine();
  ASSERT_TRUE(goodbye.ok()) << goodbye.status();
  EXPECT_EQ(*goodbye, "goodbye");
  // Destroying the channel closes its socket: the client now sees clean
  // EOF, surfaced as NotFound.
  echo.reset();
  auto eof = client->ReadLine();
  EXPECT_FALSE(eof.ok()) << "clean EOF must be NotFound, got " << *eof;
}

TEST(WakePipeTest, CoalescesNotificationsAcrossThreads) {
  WakePipe wake;
  Poller poller(Poller::Backend::kAuto);
  ASSERT_TRUE(poller.Add(wake.read_fd(), true, false).ok());
  std::thread notifier([&wake] {
    for (int i = 0; i < 1000; ++i) wake.Notify();
  });
  std::vector<Poller::Event> events;
  ASSERT_TRUE(poller.Wait(5000, &events).ok());
  notifier.join();
  ASSERT_FALSE(events.empty());
  EXPECT_TRUE(events[0].readable);
  wake.Drain();
  // All 1000 notifications collapse into pending bytes that one Drain
  // clears.
  ASSERT_TRUE(poller.Wait(0, &events).ok());
  EXPECT_TRUE(events.empty());
}

}  // namespace
}  // namespace dpjoin
