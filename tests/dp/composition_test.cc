#include "dp/composition.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dpjoin {
namespace {

TEST(CompositionTest, AdvancedCompositionFormula) {
  const double eps0 = 0.01, delta0 = 1e-8, slack = 1e-6;
  const int64_t k = 100;
  const PrivacyParams total = AdvancedComposition(eps0, delta0, k, slack);
  const double expected_eps =
      eps0 * std::sqrt(2.0 * k * std::log(1.0 / slack)) +
      k * eps0 * (std::exp(eps0) - 1.0);
  EXPECT_NEAR(total.epsilon, expected_eps, 1e-12);
  EXPECT_NEAR(total.delta, k * delta0 + slack, 1e-15);
}

TEST(CompositionTest, AdvancedBeatsBasicForManyRounds) {
  const double eps0 = 0.01;
  const int64_t k = 10000;
  const PrivacyParams adv = AdvancedComposition(eps0, 0.0, k, 1e-6);
  EXPECT_LT(adv.epsilon, eps0 * static_cast<double>(k));
}

TEST(CompositionTest, PmwPerRoundEpsilonMatchesAlgorithm2Line3) {
  // ε′ = ε / (16·sqrt(k·log(1/δ))).
  const double eps = 1.0, delta = 1e-5;
  const int64_t k = 25;
  EXPECT_NEAR(PmwPerRoundEpsilon(eps, delta, k),
              eps / (16.0 * std::sqrt(25.0 * std::log(1e5))), 1e-12);
}

TEST(CompositionTest, PmwRoundsComposeWithinBudget) {
  // 2k adaptive ε′-DP steps (EM + Laplace per round) must compose to ≤ ε
  // under advanced composition with slack δ — the Theorem A.1 bookkeeping.
  const double eps = 1.0, delta = 1e-6;
  for (int64_t k : {1, 4, 16, 64, 256}) {
    const double eps_prime = PmwPerRoundEpsilon(eps, delta, k);
    const PrivacyParams total =
        AdvancedComposition(2.0 * eps_prime, 0.0, k, delta);
    EXPECT_LE(total.epsilon, eps) << "k=" << k;
  }
}

TEST(CompositionTest, AccountantBasicCompositionSums) {
  PrivacyAccountant acc;
  acc.SpendSequential("a", PrivacyParams(0.25, 1e-6));
  acc.SpendSequential("b", PrivacyParams(0.5, 2e-6));
  const PrivacyParams total = acc.Total();
  EXPECT_DOUBLE_EQ(total.epsilon, 0.75);
  EXPECT_DOUBLE_EQ(total.delta, 3e-6);
  EXPECT_EQ(acc.entries().size(), 2u);
}

TEST(CompositionTest, AccountantParallelTakesMax) {
  PrivacyAccountant acc;
  acc.SpendParallel("buckets", {PrivacyParams(0.5, 1e-6),
                                PrivacyParams(0.25, 5e-6),
                                PrivacyParams(0.4, 2e-6)});
  const PrivacyParams total = acc.Total();
  EXPECT_DOUBLE_EQ(total.epsilon, 0.5);
  EXPECT_DOUBLE_EQ(total.delta, 5e-6);
}

TEST(CompositionTest, AccountantLedgerRendering) {
  PrivacyAccountant acc;
  acc.SpendSequential("step", PrivacyParams(1.0, 0.001));
  const std::string ledger = acc.ToString();
  EXPECT_NE(ledger.find("step"), std::string::npos);
  EXPECT_NE(ledger.find("total"), std::string::npos);
}

TEST(CompositionDeathTest, RejectsBadInput) {
  EXPECT_DEATH((void)AdvancedComposition(0.0, 0.0, 1, 1e-6), "");
  EXPECT_DEATH((void)PmwPerRoundEpsilon(1.0, 1e-6, 0), "");
  PrivacyAccountant acc;
  EXPECT_DEATH(acc.SpendParallel("x", {}), "no branches");
}

}  // namespace
}  // namespace dpjoin
