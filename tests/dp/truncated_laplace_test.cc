#include "dp/truncated_laplace.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.h"

namespace dpjoin {
namespace {

TEST(TruncatedLaplaceTest, TauMatchesPaperFormula) {
  // τ(ε, δ, Δ) = (Δ/ε)·ln(1 + (e^ε − 1)/δ).
  const double eps = 1.0, delta = 1e-4, sens = 2.0;
  EXPECT_NEAR(TruncatedLaplaceTau(eps, delta, sens),
              (sens / eps) * std::log(1.0 + (std::exp(eps) - 1.0) / delta),
              1e-12);
}

TEST(TruncatedLaplaceTest, TauIsOrderSensitivityTimesLambda) {
  // τ ≤ O(Δ·λ) for constant ε (paper §2): check a grid.
  for (double delta : {1e-3, 1e-6, 1e-9}) {
    const double lambda = std::log(1.0 / delta);
    const double tau = TruncatedLaplaceTau(1.0, delta, 1.0);
    EXPECT_LE(tau, 3.0 * lambda);
    EXPECT_GE(tau, 0.5 * lambda);
  }
}

TEST(TruncatedLaplaceTest, SupportIsZeroToTwoTau) {
  TruncatedLaplace tlap = TruncatedLaplace::ForSensitivity(1.0, 1e-5, 1.0);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = tlap.Sample(rng);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 2.0 * tlap.tau());
  }
}

TEST(TruncatedLaplaceTest, MeanIsTau) {
  TruncatedLaplace tlap(2.0, 10.0);
  EXPECT_DOUBLE_EQ(tlap.Mean(), 10.0);
  Rng rng(11);
  SampleStats stats;
  for (int i = 0; i < 40000; ++i) stats.Add(tlap.Sample(rng));
  EXPECT_NEAR(stats.Mean(), 10.0, 0.1);
}

TEST(TruncatedLaplaceTest, PdfIntegratesToOne) {
  TruncatedLaplace tlap(1.5, 6.0);
  double integral = 0.0;
  const double step = 0.001;
  for (double x = 0.0; x < 12.0; x += step) integral += tlap.Pdf(x) * step;
  EXPECT_NEAR(integral, 1.0, 1e-3);
  EXPECT_DOUBLE_EQ(tlap.Pdf(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(tlap.Pdf(12.1), 0.0);
}

TEST(TruncatedLaplaceTest, CdfMonotoneAndBoundary) {
  TruncatedLaplace tlap(1.0, 5.0);
  EXPECT_DOUBLE_EQ(tlap.Cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(tlap.Cdf(10.0), 1.0);
  EXPECT_NEAR(tlap.Cdf(5.0), 0.5, 1e-12);  // symmetric about τ
  double prev = 0.0;
  for (double x = 0.0; x <= 10.0; x += 0.25) {
    const double c = tlap.Cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(TruncatedLaplaceTest, SampleMatchesCdfAtQuartiles) {
  TruncatedLaplace tlap(2.0, 8.0);
  Rng rng(21);
  SampleStats stats;
  for (int i = 0; i < 40000; ++i) stats.Add(tlap.Sample(rng));
  // Empirical quartiles should invert the CDF.
  for (double q : {0.25, 0.5, 0.75}) {
    const double x = stats.Quantile(q);
    EXPECT_NEAR(tlap.Cdf(x), q, 0.02);
  }
}

TEST(TruncatedLaplaceTest, ForSensitivityUsesShareScale) {
  // Scale must be Δ/ε for the share passed (the paper's 2Δ/ε with ε/2).
  TruncatedLaplace tlap = TruncatedLaplace::ForSensitivity(0.5, 1e-5, 3.0);
  EXPECT_DOUBLE_EQ(tlap.scale(), 6.0);
  EXPECT_DOUBLE_EQ(tlap.tau(), TruncatedLaplaceTau(0.5, 1e-5, 3.0));
}

TEST(TruncatedLaplaceTest, PrivacyLikelihoodRatioBounded) {
  // Core DP property: for |u − v| ≤ Δ, densities of u + TLap and v + TLap
  // at any point in the overlap differ by ≤ e^ε (outside: δ mass).
  const double eps = 0.7, delta = 1e-4, sens = 1.0;
  TruncatedLaplace tlap = TruncatedLaplace::ForSensitivity(eps, delta, sens);
  for (double x = 0.1; x < 2.0 * tlap.tau() - sens; x += 0.37) {
    const double ratio = tlap.Pdf(x) / tlap.Pdf(x + sens);
    EXPECT_LE(ratio, std::exp(eps) * (1.0 + 1e-9));
    EXPECT_GE(ratio, std::exp(-eps) * (1.0 - 1e-9));
  }
  // Total mass outside the overlap window is ≤ δ on each side.
  EXPECT_LE(tlap.Cdf(sens), delta * (1.0 + 1e-6));
}

TEST(TruncatedLaplaceDeathTest, RejectsBadParameters) {
  EXPECT_DEATH(TruncatedLaplace(0.0, 1.0), "");
  EXPECT_DEATH(TruncatedLaplace(1.0, 0.0), "");
  EXPECT_DEATH((void)TruncatedLaplaceTau(1.0, 0.0, 1.0), "");
}

}  // namespace
}  // namespace dpjoin
