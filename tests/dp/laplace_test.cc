#include "dp/laplace.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.h"

namespace dpjoin {
namespace {

TEST(LaplaceTest, PdfIntegratesToOneOnGrid) {
  Laplace lap(1.5);
  double integral = 0.0;
  const double step = 0.01;
  for (double x = -30.0; x < 30.0; x += step) {
    integral += lap.Pdf(x) * step;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(LaplaceTest, CdfMatchesClosedForm) {
  Laplace lap(2.0);
  EXPECT_DOUBLE_EQ(lap.Cdf(0.0), 0.5);
  EXPECT_NEAR(lap.Cdf(2.0), 1.0 - 0.5 * std::exp(-1.0), 1e-12);
  EXPECT_NEAR(lap.Cdf(-2.0), 0.5 * std::exp(-1.0), 1e-12);
}

TEST(LaplaceTest, TailProbability) {
  Laplace lap(1.0);
  EXPECT_NEAR(lap.TailProbability(3.0), std::exp(-3.0), 1e-12);
  EXPECT_DOUBLE_EQ(lap.TailProbability(0.0), 1.0);
}

TEST(LaplaceTest, SampleMomentsMatchDistribution) {
  // Mean 0, variance 2b².
  const double scale = 3.0;
  Laplace lap(scale);
  Rng rng(12345);
  SampleStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(lap.Sample(rng));
  EXPECT_NEAR(stats.Mean(), 0.0, 0.1);
  EXPECT_NEAR(stats.StdDev(), scale * std::sqrt(2.0), 0.15);
}

TEST(LaplaceTest, SampleMedianNearZero) {
  Laplace lap(1.0);
  Rng rng(7);
  SampleStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(lap.Sample(rng));
  EXPECT_NEAR(stats.Median(), 0.0, 0.05);
}

TEST(LaplaceTest, AddLaplaceNoiseScalesWithSensitivityOverEpsilon) {
  Rng rng(99);
  SampleStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(AddLaplaceNoise(10.0, 2.0, 0.5, rng));
  }
  EXPECT_NEAR(stats.Mean(), 10.0, 0.25);
  // b = Δ/ε = 4 ⇒ stddev = 4√2 ≈ 5.66.
  EXPECT_NEAR(stats.StdDev(), 4.0 * std::sqrt(2.0), 0.3);
}

TEST(LaplaceTest, DeterministicUnderSameSeed) {
  Laplace lap(1.0);
  Rng rng1(42), rng2(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(lap.Sample(rng1), lap.Sample(rng2));
  }
}

TEST(LaplaceDeathTest, RejectsNonPositiveScale) {
  EXPECT_DEATH(Laplace(0.0), "");
  EXPECT_DEATH(Laplace(-1.0), "");
}

}  // namespace
}  // namespace dpjoin
