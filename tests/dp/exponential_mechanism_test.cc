#include "dp/exponential_mechanism.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace dpjoin {
namespace {

TEST(ExponentialMechanismTest, ProbabilitiesAreSoftmaxOfHalfEpsilonScores) {
  const std::vector<double> scores = {0.0, 1.0, 2.0};
  const double eps = 2.0;
  const auto probs = ExponentialMechanismProbabilities(scores, eps);
  ASSERT_EQ(probs.size(), 3u);
  double total = 0.0;
  for (double p : probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // p_i ∝ exp(0.5·ε·s_i) = exp(s_i) here.
  EXPECT_NEAR(probs[1] / probs[0], std::exp(1.0), 1e-9);
  EXPECT_NEAR(probs[2] / probs[0], std::exp(2.0), 1e-9);
}

TEST(ExponentialMechanismTest, StableForHugeScores) {
  const std::vector<double> scores = {1000.0, 1001.0};
  const auto probs = ExponentialMechanismProbabilities(scores, 2.0);
  EXPECT_NEAR(probs[0] + probs[1], 1.0, 1e-12);
  EXPECT_NEAR(probs[1] / probs[0], std::exp(1.0), 1e-6);
}

TEST(ExponentialMechanismTest, SamplerMatchesExactProbabilities) {
  const std::vector<double> scores = {0.0, 0.5, 1.5, 3.0};
  const double eps = 1.0;
  const auto probs = ExponentialMechanismProbabilities(scores, eps);
  Rng rng(2024);
  std::vector<int64_t> counts(scores.size(), 0);
  const int64_t trials = 200000;
  for (int64_t t = 0; t < trials; ++t) {
    ++counts[ExponentialMechanism(scores, eps, rng)];
  }
  for (size_t i = 0; i < scores.size(); ++i) {
    const double freq = static_cast<double>(counts[i]) /
                        static_cast<double>(trials);
    EXPECT_NEAR(freq, probs[i], 0.01) << "candidate " << i;
  }
}

TEST(ExponentialMechanismTest, HighEpsilonConcentratesOnArgmax) {
  const std::vector<double> scores = {1.0, 10.0, 2.0};
  Rng rng(5);
  int64_t hits = 0;
  for (int t = 0; t < 1000; ++t) {
    if (ExponentialMechanism(scores, 50.0, rng) == 1) ++hits;
  }
  EXPECT_GT(hits, 990);
}

TEST(ExponentialMechanismTest, SingleCandidateAlwaysChosen) {
  Rng rng(1);
  EXPECT_EQ(ExponentialMechanism({0.7}, 1.0, rng), 0u);
}

TEST(ExponentialMechanismTest, UniformScoresNearUniformSelection) {
  const std::vector<double> scores(8, 3.0);
  Rng rng(77);
  std::vector<int64_t> counts(scores.size(), 0);
  for (int t = 0; t < 80000; ++t) {
    ++counts[ExponentialMechanism(scores, 1.0, rng)];
  }
  for (int64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 80000.0, 1.0 / 8.0, 0.01);
  }
}

TEST(ExponentialMechanismDeathTest, RejectsBadInput) {
  Rng rng(1);
  EXPECT_DEATH((void)ExponentialMechanism({}, 1.0, rng), "empty");
  EXPECT_DEATH((void)ExponentialMechanism({1.0}, 0.0, rng), "");
}

}  // namespace
}  // namespace dpjoin
