#include "dp/privacy_params.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dpjoin {
namespace {

TEST(PrivacyParamsTest, LambdaMatchesDefinition) {
  // λ = (1/ε)·ln(1/δ).
  PrivacyParams p(2.0, 1e-6);
  EXPECT_NEAR(p.Lambda(), std::log(1e6) / 2.0, 1e-12);
  PrivacyParams q(1.0, 0.01);
  EXPECT_NEAR(q.Lambda(), std::log(100.0), 1e-12);
}

TEST(PrivacyParamsTest, HalfSplitsBoth) {
  PrivacyParams p(1.0, 1e-4);
  PrivacyParams h = p.Half();
  EXPECT_DOUBLE_EQ(h.epsilon, 0.5);
  EXPECT_DOUBLE_EQ(h.delta, 5e-5);
}

TEST(PrivacyParamsTest, ScaledScalesBoth) {
  PrivacyParams p(1.0, 0.2);
  PrivacyParams s = p.Scaled(0.25);
  EXPECT_DOUBLE_EQ(s.epsilon, 0.25);
  EXPECT_DOUBLE_EQ(s.delta, 0.05);
}

TEST(PrivacyParamsTest, FLowerMatchesDefinition) {
  // f_lower = sqrt(log|D| / ε).
  EXPECT_NEAR(FLower(1024.0, 1.0), std::sqrt(std::log(1024.0)), 1e-12);
  EXPECT_NEAR(FLower(1024.0, 4.0), std::sqrt(std::log(1024.0) / 4.0), 1e-12);
}

TEST(PrivacyParamsTest, FUpperAddsQueryAndDeltaFactors) {
  const double domain = 4096.0, queries = 64.0, eps = 1.0, delta = 1e-5;
  EXPECT_NEAR(FUpper(domain, queries, eps, delta),
              FLower(domain, eps) *
                  std::sqrt(std::log(queries) * std::log(1.0 / delta)),
              1e-12);
}

TEST(PrivacyParamsDeathTest, RejectsInvalidParameters) {
  EXPECT_DEATH(PrivacyParams(0.0, 0.1), "");
  EXPECT_DEATH(PrivacyParams(-1.0, 0.1), "");
  EXPECT_DEATH(PrivacyParams(1.0, 0.6), "");
  PrivacyParams zero_delta(1.0, 0.0);
  EXPECT_DEATH((void)zero_delta.Lambda(), "");
}

}  // namespace
}  // namespace dpjoin
