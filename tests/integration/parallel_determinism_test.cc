// Determinism across thread counts — the hard requirement of the parallel
// execution substrate: every parallelized path must produce bit-identical
// results for threads ∈ {1, 2, 8}, because block decompositions are fixed
// by grain (never by thread count) and DP noise draws stay on the caller's
// single Rng.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/partition_two_table.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "release/pmw.h"
#include "relational/generators.h"
#include "relational/join.h"
#include "sensitivity/residual_sensitivity.h"
#include "testing/brute_force.h"
#include "testing/queries.h"

namespace dpjoin {
namespace {

struct ShapeParam {
  const char* name;
  int kind;  // 0 = two-table, 1 = path3, 2 = star(A→B,C), 3 = fig4
  int64_t tuples;
  uint64_t seed;
};

JoinQuery MakeQueryByKind(int kind) {
  switch (kind) {
    case 0:
      return MakeTwoTableQuery(6, 8, 6);
    case 1:
      return MakePathQuery(3, 5);
    case 2:
      return testing::MakeSmallStarQuery(4, 5, 6);
    default:
      return testing::MakeFigure4Query(2);
  }
}

class ParallelDeterminismTest : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(ParallelDeterminismTest, EvaluateAllOnTensorBitIdentical) {
  const ShapeParam& param = GetParam();
  Rng rng(param.seed);
  const JoinQuery query = MakeQueryByKind(param.kind);
  const Instance instance = testing::RandomInstance(query, param.tuples, rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 3, rng);
  const DenseTensor tensor = JoinTensor(instance);

  std::vector<double> baseline;
  {
    ScopedThreads scoped(1);
    baseline = EvaluateAllOnTensor(family, tensor);
  }
  for (int threads : {2, 8}) {
    ScopedThreads scoped(threads);
    const std::vector<double> answers = EvaluateAllOnTensor(family, tensor);
    ASSERT_EQ(answers.size(), baseline.size());
    for (size_t i = 0; i < answers.size(); ++i) {
      EXPECT_EQ(answers[i], baseline[i])
          << "query " << i << ", threads = " << threads;
    }
  }
}

TEST_P(ParallelDeterminismTest, EvaluateAllOnInstanceBitIdentical) {
  const ShapeParam& param = GetParam();
  Rng rng(param.seed + 40);
  const JoinQuery query = MakeQueryByKind(param.kind);
  const Instance instance = testing::RandomInstance(query, param.tuples, rng);
  // Uniform values make the per-query sums genuinely floating-point (not
  // integer-exact), so this exercises the block-order merge contract.
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomUniform, 3, rng);

  std::vector<double> baseline;
  {
    ScopedThreads scoped(1);
    baseline = EvaluateAllOnInstance(family, instance);
  }
  for (int threads : {2, 8}) {
    ScopedThreads scoped(threads);
    const std::vector<double> answers = EvaluateAllOnInstance(family, instance);
    ASSERT_EQ(answers.size(), baseline.size());
    for (size_t i = 0; i < answers.size(); ++i) {
      EXPECT_EQ(answers[i], baseline[i])
          << "query " << i << ", threads = " << threads;
    }
  }
}

TEST_P(ParallelDeterminismTest, EvaluateOnTensorBitIdentical) {
  const ShapeParam& param = GetParam();
  Rng rng(param.seed + 10);
  const JoinQuery query = MakeQueryByKind(param.kind);
  const Instance instance = testing::RandomInstance(query, param.tuples, rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 2, rng);
  const DenseTensor tensor = JoinTensor(instance);
  const std::vector<int64_t> parts(
      static_cast<size_t>(query.num_relations()), 1);

  double baseline;
  {
    ScopedThreads scoped(1);
    baseline = EvaluateOnTensor(family, parts, tensor);
  }
  for (int threads : {2, 8}) {
    ScopedThreads scoped(threads);
    EXPECT_EQ(EvaluateOnTensor(family, parts, tensor), baseline)
        << "threads = " << threads;
  }
}

TEST_P(ParallelDeterminismTest, PmwBitIdentical) {
  const ShapeParam& param = GetParam();
  Rng setup_rng(param.seed + 20);
  const JoinQuery query = MakeQueryByKind(param.kind);
  const Instance instance =
      testing::RandomInstance(query, param.tuples, setup_rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 2, setup_rng);
  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 4.0;
  options.num_rounds = 6;

  auto run = [&](int threads) {
    options.num_threads = threads;
    Rng rng(param.seed + 21);  // fresh identical noise stream per run
    auto result = PrivateMultiplicativeWeights(instance, family, options, rng);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  };

  const PmwResult baseline = run(1);
  for (int threads : {2, 8}) {
    const PmwResult result = run(threads);
    EXPECT_EQ(result.noisy_total, baseline.noisy_total);
    EXPECT_EQ(result.rounds, baseline.rounds);
    EXPECT_EQ(result.per_round_epsilon, baseline.per_round_epsilon);
    const auto& values = result.synthetic.values();
    const auto& expected = baseline.synthetic.values();
    ASSERT_EQ(values.size(), expected.size());
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(values[i], expected[i])
          << "cell " << i << ", threads = " << threads;
    }
  }
}

TEST_P(ParallelDeterminismTest, FactoredPmwBitIdentical) {
  const ShapeParam& param = GetParam();
  Rng setup_rng(param.seed + 50);
  const JoinQuery query = MakeQueryByKind(param.kind);
  const Instance instance =
      testing::RandomInstance(query, param.tuples, setup_rng);
  // Prefix indicators: the sparse sub-box update path must be bit-identical
  // across thread counts too (ordered block merges everywhere).
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kPrefix, 3, setup_rng);
  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 4.0;
  options.num_rounds = 8;
  options.use_factored_loop = true;

  auto run = [&](int threads) {
    options.num_threads = threads;
    Rng rng(param.seed + 51);
    auto result = PrivateMultiplicativeWeights(instance, family, options, rng);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  };

  const PmwResult baseline = run(1);
  EXPECT_GT(baseline.perf.sparse_rounds, 0)
      << "prefix workload never took the sparse path";
  for (int threads : {2, 8}) {
    const PmwResult result = run(threads);
    EXPECT_EQ(result.noisy_total, baseline.noisy_total);
    EXPECT_EQ(result.perf.sparse_rounds, baseline.perf.sparse_rounds);
    const auto& values = result.synthetic.values();
    const auto& expected = baseline.synthetic.values();
    ASSERT_EQ(values.size(), expected.size());
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(values[i], expected[i])
          << "cell " << i << ", threads = " << threads;
    }
  }
}

TEST_P(ParallelDeterminismTest, JoinTensorBitIdentical) {
  const ShapeParam& param = GetParam();
  Rng rng(param.seed + 60);
  const JoinQuery query = MakeQueryByKind(param.kind);
  const Instance instance = testing::RandomInstance(query, param.tuples, rng);

  std::vector<double> baseline;
  {
    ScopedThreads scoped(1);
    baseline = JoinTensor(instance).values();
  }
  for (int threads : {2, 8}) {
    ScopedThreads scoped(threads);
    const std::vector<double> values = JoinTensor(instance).values();
    ASSERT_EQ(values.size(), baseline.size());
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(values[i], baseline[i])
          << "cell " << i << ", threads = " << threads;
    }
  }
}

TEST_P(ParallelDeterminismTest, ResidualSensitivityBitIdentical) {
  const ShapeParam& param = GetParam();
  Rng rng(param.seed + 70);
  const JoinQuery query = MakeQueryByKind(param.kind);
  const Instance instance = testing::RandomInstance(query, param.tuples, rng);

  ResidualSensitivityResult baseline;
  {
    ScopedThreads scoped(1);
    baseline = ResidualSensitivity(instance, 0.4);
  }
  for (int threads : {2, 8}) {
    ScopedThreads scoped(threads);
    const ResidualSensitivityResult result =
        ResidualSensitivity(instance, 0.4);
    EXPECT_EQ(result.value, baseline.value) << "threads = " << threads;
    EXPECT_EQ(result.argmax_k, baseline.argmax_k) << "threads = " << threads;
    EXPECT_EQ(result.k_searched, baseline.k_searched)
        << "threads = " << threads;
    EXPECT_EQ(result.ls_hat_0, baseline.ls_hat_0) << "threads = " << threads;
  }
}

TEST(PartitionDeterminismTest, PartitionTwoTableBitIdentical) {
  const JoinQuery query = MakeTwoTableQuery(6, 8, 6);
  Rng data_rng(611);
  const Instance instance = testing::RandomInstance(query, 60, data_rng);
  const PrivacyParams params(1.0, 1e-4);

  auto run = [&](int threads) {
    ScopedThreads scoped(threads);
    Rng rng(612);  // identical noise stream for every thread count
    auto partition = PartitionTwoTable(instance, params, 0.0, rng);
    EXPECT_TRUE(partition.ok());
    return std::move(partition).value();
  };

  const TwoTablePartition baseline = run(1);
  for (int threads : {2, 8}) {
    const TwoTablePartition partition = run(threads);
    ASSERT_EQ(partition.buckets.size(), baseline.buckets.size())
        << "threads = " << threads;
    for (size_t b = 0; b < baseline.buckets.size(); ++b) {
      EXPECT_EQ(partition.buckets[b].bucket_index,
                baseline.buckets[b].bucket_index);
      EXPECT_EQ(partition.buckets[b].num_join_values,
                baseline.buckets[b].num_join_values);
      for (int rel = 0; rel < 2; ++rel) {
        const auto& got = partition.buckets[b].sub_instance.relation(rel);
        const auto& want = baseline.buckets[b].sub_instance.relation(rel);
        ASSERT_EQ(got.entries().size(), want.entries().size());
        for (const auto& [code, freq] : want.entries()) {
          const auto it = got.entries().find(code);
          ASSERT_NE(it, got.entries().end());
          EXPECT_EQ(it->second, freq);
        }
      }
    }
  }
}

TEST_P(ParallelDeterminismTest, ParallelJoinsBitIdenticalToSerial) {
  const ShapeParam& param = GetParam();
  Rng rng(param.seed + 30);
  const JoinQuery query = MakeQueryByKind(param.kind);
  const Instance instance = testing::RandomInstance(query, param.tuples, rng);
  const RelationSet all = query.all_relations();
  const double serial_count = SubJoinCount(instance, all);
  const AttributeSet group_by = query.Boundary(RelationSet::Of(0));
  const auto serial_groups =
      GroupedJoinSizes(instance, RelationSet::Of(0), group_by);
  for (int threads : {1, 2, 8}) {
    EXPECT_EQ(ParallelSubJoinCount(instance, all, threads), serial_count)
        << "threads = " << threads;
    const auto groups =
        ParallelGroupedJoinSizes(instance, RelationSet::Of(0), group_by,
                                 threads);
    ASSERT_EQ(groups.size(), serial_groups.size()) << "threads = " << threads;
    for (const auto& [key, mass] : serial_groups) {
      const auto it = groups.find(key);
      ASSERT_NE(it, groups.end()) << "missing group " << key;
      EXPECT_EQ(it->second, mass) << "threads = " << threads;
    }
  }
}

// --- Concurrent top-level regions ---------------------------------------
//
// The pool interleaves workers across every region in flight, so the
// bit-identity contract has a second axis: results must be unchanged not
// just for any thread count, but for any MIX of regions running at once.
// These tests run full releases / whole-workload evaluations from several
// user threads simultaneously and bit-compare each against the serial run.

TEST(ConcurrentRegionsDeterminismTest, PmwReleasesBitIdenticalToSerial) {
  Rng setup_rng(901);
  const JoinQuery query = MakeQueryByKind(0);
  const Instance instance = testing::RandomInstance(query, 25, setup_rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 2, setup_rng);
  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 4.0;
  options.num_rounds = 6;

  auto run = [&](int threads) {
    PmwOptions opt = options;
    opt.num_threads = threads;
    Rng rng(902);  // fresh identical noise stream per run
    auto result = PrivateMultiplicativeWeights(instance, family, opt, rng);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  };

  const PmwResult baseline = run(1);
  // Heterogeneous thread budgets {1, 2, 8, 8} racing on the pool — the
  // widest interleaving spread the contract promises to survive.
  const int budgets[] = {1, 2, 8, 8};
  constexpr int kCallers = 4;
  std::vector<PmwResult> results(kCallers);
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] { results[t] = run(budgets[t]); });
  }
  for (auto& caller : callers) caller.join();

  for (int t = 0; t < kCallers; ++t) {
    EXPECT_EQ(results[t].noisy_total, baseline.noisy_total) << "caller " << t;
    EXPECT_EQ(results[t].rounds, baseline.rounds) << "caller " << t;
    const auto& values = results[t].synthetic.values();
    const auto& expected = baseline.synthetic.values();
    ASSERT_EQ(values.size(), expected.size());
    for (size_t i = 0; i < values.size(); ++i) {
      ASSERT_EQ(values[i], expected[i]) << "cell " << i << ", caller " << t;
    }
  }
}

TEST(ConcurrentRegionsDeterminismTest, EvaluateAllBitIdenticalToSerial) {
  // The serving layer's AnswerAll is EvaluateAllOnTensor over a release's
  // synthetic tensor; with --workers several of these race on the pool.
  Rng rng(911);
  const JoinQuery query = MakeQueryByKind(0);
  const Instance instance = testing::RandomInstance(query, 25, rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomUniform, 3, rng);
  const DenseTensor tensor = JoinTensor(instance);

  std::vector<double> baseline;
  {
    ScopedThreads scoped(1);
    baseline = EvaluateAllOnTensor(family, tensor);
  }
  for (int round = 0; round < 5; ++round) {
    constexpr int kCallers = 4;
    std::vector<std::vector<double>> results(kCallers);
    std::vector<std::thread> callers;
    for (int t = 0; t < kCallers; ++t) {
      callers.emplace_back([&, t] {
        ScopedThreads scoped(t == 0 ? 1 : 8);
        results[t] = EvaluateAllOnTensor(family, tensor);
      });
    }
    for (auto& caller : callers) caller.join();
    for (int t = 0; t < kCallers; ++t) {
      ASSERT_EQ(results[t].size(), baseline.size());
      for (size_t i = 0; i < baseline.size(); ++i) {
        ASSERT_EQ(results[t][i], baseline[i])
            << "round " << round << " caller " << t << " query " << i;
      }
    }
  }
}

TEST(ConcurrentRegionsDeterminismTest, NestedRegionFromWorkerDoesNotDeadlock) {
  // A region submitted from inside a pool worker (here: each block of an
  // outer ParallelFor runs a whole-workload evaluation, itself a parallel
  // region) must complete and reproduce the serial answers — the caller of
  // a nested region drains its own blocks, so no cycle of waits can form.
  Rng rng(921);
  const JoinQuery query = MakeQueryByKind(0);
  const Instance instance = testing::RandomInstance(query, 25, rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 2, rng);
  const DenseTensor tensor = JoinTensor(instance);

  std::vector<double> baseline;
  {
    ScopedThreads scoped(1);
    baseline = EvaluateAllOnTensor(family, tensor);
  }
  constexpr int64_t kOuter = 8;
  std::vector<std::vector<double>> results(kOuter);
  ParallelFor(
      0, kOuter, 1,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          ScopedThreads scoped(4);  // nested regions get their own budget
          results[static_cast<size_t>(i)] =
              EvaluateAllOnTensor(family, tensor);
        }
      },
      4);
  for (int64_t i = 0; i < kOuter; ++i) {
    ASSERT_EQ(results[static_cast<size_t>(i)].size(), baseline.size());
    for (size_t q = 0; q < baseline.size(); ++q) {
      ASSERT_EQ(results[static_cast<size_t>(i)][q], baseline[q])
          << "outer block " << i << " query " << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    JoinShapes, ParallelDeterminismTest,
    ::testing::Values(ShapeParam{"two_table", 0, 25, 501},
                      ShapeParam{"path3", 1, 15, 502},
                      ShapeParam{"star", 2, 20, 503},
                      ShapeParam{"figure4", 3, 10, 504}),
    [](const ::testing::TestParamInfo<ShapeParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace dpjoin
