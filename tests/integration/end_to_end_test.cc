// End-to-end integration tests: full release pipelines on realistic
// instances, cross-algorithm comparisons, and Theorem-shaped assertions.

#include <gtest/gtest.h>

#include "common/stats.h"
#include "core/multi_table.h"
#include "core/theory_bounds.h"
#include "core/two_table.h"
#include "core/uniformize.h"
#include "lowerbound/hard_instances.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "relational/generators.h"
#include "relational/join.h"
#include "sensitivity/local_sensitivity.h"
#include "sensitivity/residual_sensitivity.h"
#include "testing/queries.h"

namespace dpjoin {
namespace {

const PrivacyParams kParams(1.0, 1e-4);

ReleaseOptions MediumOptions() {
  ReleaseOptions options;
  options.pmw_max_rounds = 24;
  return options;
}

struct PipelineParam {
  const char* name;
  int64_t tuples_per_relation;
  double zipf_s;
  uint64_t seed;
};

class TwoTablePipelineTest : public ::testing::TestWithParam<PipelineParam> {};

TEST_P(TwoTablePipelineTest, ZipfWorkloadsWithinTheoryEnvelope) {
  const PipelineParam& param = GetParam();
  Rng rng(param.seed);
  const JoinQuery query = MakeTwoTableQuery(6, 8, 6);
  const Instance instance = MakeZipfTwoTableInstance(
      query, param.tuples_per_relation, param.zipf_s, rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 3, rng);

  auto result = TwoTable(instance, family, kParams, MediumOptions(), rng);
  ASSERT_TRUE(result.ok());
  const double error = WorkloadError(family, instance, result->synthetic);
  const double bound = TwoTableUpperBound(
      JoinCount(instance), TwoTableDelta(instance),
      query.ReleaseDomainSize(), static_cast<double>(family.TotalCount()),
      kParams);
  // Generous envelope: the theorem's constant is unstated.
  EXPECT_LE(error, 4.0 * bound);
  // And the release is never trivially empty on non-empty data.
  EXPECT_GT(result->synthetic.TotalMass(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ZipfSweep, TwoTablePipelineTest,
    ::testing::Values(PipelineParam{"uniform", 60, 0.0, 901},
                      PipelineParam{"mild_skew", 60, 0.8, 902},
                      PipelineParam{"heavy_skew", 60, 1.5, 903},
                      PipelineParam{"small", 20, 1.0, 904},
                      PipelineParam{"large", 120, 1.0, 905}),
    [](const ::testing::TestParamInfo<PipelineParam>& info) {
      return info.param.name;
    });

TEST(EndToEndTest, MultiTablePathPipeline) {
  Rng rng(21);
  const JoinQuery query = MakePathQuery(3, 4);
  const Instance instance = MakeZipfPathInstance(query, 24, 1.0, rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomUniform, 2, rng);
  auto result = MultiTable(instance, family, kParams, MediumOptions(), rng);
  ASSERT_TRUE(result.ok());
  const double error = WorkloadError(family, instance, result->synthetic);
  const double rs =
      ResidualSensitivityValue(instance, 1.0 / kParams.Lambda());
  const double bound = MultiTableUpperBound(
      JoinCount(instance), rs, query.ReleaseDomainSize(),
      static_cast<double>(family.TotalCount()), kParams);
  EXPECT_LE(error, 4.0 * bound);
}

TEST(EndToEndTest, UniformizeReducesPerBucketSensitivityOnFigure3) {
  // The Figure 3 story end to end: global Δ = k but buckets carry
  // Δ̃ ≈ their own ceiling. δ = 0.01 keeps the TLap shift below the degree
  // spread so the buckets separate at this scale.
  const PrivacyParams params(1.0, 1e-2);
  Rng rng(22);
  const Instance instance = MakeFigure3Instance(40);
  const QueryFamily family = MakeCountingFamily(instance.query());
  auto result =
      UniformizeTwoTable(instance, family, params, MediumOptions(), rng);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->bucket_info.size(), 2u);
  double min_delta = 1e18, max_delta = 0.0;
  for (const auto& info : result->bucket_info) {
    min_delta = std::min(min_delta, info.delta_tilde);
    max_delta = std::max(max_delta, info.delta_tilde);
  }
  // The low bucket's Δ̃ sits well below the top bucket's.
  EXPECT_LT(min_delta, 0.8 * max_delta);
}

TEST(EndToEndTest, CountQueryErrorsTrackSensitivityOrdering) {
  // Releasing with a smaller Δ̃ (low-skew instance) should give lower count
  // error than a high-skew instance of the same size, on median.
  const JoinQuery query = MakeTwoTableQuery(6, 8, 6);
  const QueryFamily family = MakeCountingFamily(query);
  SampleStats low_skew_errors, high_skew_errors;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng_data(400 + seed);
    const Instance low =
        MakeZipfTwoTableInstance(query, 60, 0.0, rng_data);
    const Instance high =
        MakeZipfTwoTableInstance(query, 60, 2.0, rng_data);
    Rng rng1(500 + seed), rng2(600 + seed);
    auto low_result = TwoTable(low, family, kParams, MediumOptions(), rng1);
    auto high_result =
        TwoTable(high, family, kParams, MediumOptions(), rng2);
    ASSERT_TRUE(low_result.ok());
    ASSERT_TRUE(high_result.ok());
    low_skew_errors.Add(std::abs(
        EvaluateAllOnTensor(family, low_result->synthetic)[0] -
        JoinCount(low)));
    high_skew_errors.Add(std::abs(
        EvaluateAllOnTensor(family, high_result->synthetic)[0] -
        JoinCount(high)));
  }
  // Not a hard theorem (one-sided noise, randomness) — median ordering with
  // slack. High skew ⇒ larger Δ ⇒ larger masking noise on count.
  EXPECT_LT(low_skew_errors.Median(), high_skew_errors.Median() * 3.0);
}

TEST(EndToEndTest, ReductionPipelineRecoverySingleTableAnswers) {
  // Theorem 3.5 reduction end to end: release the two-table construction,
  // divide answers by Δ, compare against the single table.
  const std::vector<int64_t> table = {3, 1, 2, 0};
  auto built = MakeTheorem35Instance(table, 4, 2);
  ASSERT_TRUE(built.ok());
  std::vector<std::vector<double>> queries = {{1, 1, 1, 1},
                                              {1, -1, 1, -1},
                                              {0.5, 0, -0.5, 1}};
  auto family = LiftSingleTableQueries(*built, queries);
  ASSERT_TRUE(family.ok());
  Rng rng(23);
  auto result =
      TwoTable(built->instance, *family, kParams, MediumOptions(), rng);
  ASSERT_TRUE(result.ok());
  const auto answers = EvaluateAllOnTensor(*family, result->synthetic);
  // The reduction argument: recovered error is α′/Δ where α′ obeys
  // Theorem 3.3 (with the Δ̃ actually used). Generous 4× constant.
  const double alpha_bound = PmwUpperBound(
      JoinCount(built->instance), result->delta_tilde,
      built->instance.query().ReleaseDomainSize(),
      static_cast<double>(family->TotalCount()), kParams);
  for (size_t j = 0; j < queries.size(); ++j) {
    const double recovered =
        answers[family->index().Encode({static_cast<int64_t>(j), 0})] /
        static_cast<double>(built->delta);
    const double truth = SingleTableAnswer(table, queries[j]);
    EXPECT_LE(std::abs(recovered - truth),
              4.0 * alpha_bound / static_cast<double>(built->delta))
        << "query " << j;
  }
}

TEST(EndToEndTest, HierarchicalStarFullPipeline) {
  Rng rng(24);
  const JoinQuery query = testing::MakeSmallStarQuery(6, 6, 6);
  Instance instance = Instance::Make(query);
  for (int64_t a = 0; a < 6; ++a) {
    for (int64_t b = 0; b < (a < 2 ? 6 : 1); ++b) {
      ASSERT_TRUE(instance.AddTuple(0, {a, b}, 1).ok());
    }
    ASSERT_TRUE(instance.AddTuple(1, {a, a}, 1).ok());
  }
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kPrefix, 3, rng);
  auto result = MultiTable(instance, family, kParams, MediumOptions(), rng);
  ASSERT_TRUE(result.ok());
  const double error = WorkloadError(family, instance, result->synthetic);
  EXPECT_LT(error, 1e4);  // finite, sane
  EXPECT_GT(result->synthetic.TotalMass(), 0.0);
}

}  // namespace
}  // namespace dpjoin
