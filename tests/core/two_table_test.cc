#include "core/two_table.h"

#include <gtest/gtest.h>

#include "core/theory_bounds.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "relational/generators.h"
#include "relational/join.h"
#include "relational/join_query.h"
#include "sensitivity/local_sensitivity.h"
#include "testing/brute_force.h"

namespace dpjoin {
namespace {

const PrivacyParams kParams(1.0, 1e-5);

TEST(TwoTableTest, RejectsNonTwoTableQueries) {
  Rng rng(1);
  const JoinQuery query = MakePathQuery(3, 2);
  const Instance instance = Instance::Make(query);
  const QueryFamily family = MakeCountingFamily(query);
  EXPECT_TRUE(TwoTable(instance, family, kParams, {}, rng)
                  .status()
                  .IsInvalidArgument());
}

TEST(TwoTableTest, DeltaTildeUpperBoundsTrueDelta) {
  Rng rng(2);
  const JoinQuery query = MakeTwoTableQuery(4, 4, 4);
  for (int rep = 0; rep < 5; ++rep) {
    const Instance instance = testing::RandomInstance(query, 20, rng);
    const QueryFamily family = MakeCountingFamily(query);
    auto result = TwoTable(instance, family, kParams, {}, rng);
    ASSERT_TRUE(result.ok());
    // TLap noise is non-negative: Δ̃ ≥ Δ always (this is what makes the
    // PMW sensitivity bound sound).
    EXPECT_GE(result->delta_tilde, TwoTableDelta(instance) - 1e-9);
  }
}

TEST(TwoTableTest, BudgetLedgerTotalsToParams) {
  Rng rng(3);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const Instance instance = testing::RandomInstance(query, 10, rng);
  const QueryFamily family = MakeCountingFamily(query);
  auto result = TwoTable(instance, family, kParams, {}, rng);
  ASSERT_TRUE(result.ok());
  // (ε/2, δ/2) for Δ̃ + (ε/2, δ/2) for PMW = (ε, δ) — Lemma 3.2.
  const PrivacyParams total = result->accountant.Total();
  EXPECT_NEAR(total.epsilon, kParams.epsilon, 1e-12);
  EXPECT_NEAR(total.delta, kParams.delta, 1e-15);
}

TEST(TwoTableTest, MassIsMaskedCountPlusNonNegativeNoise) {
  Rng rng(4);
  const JoinQuery query = MakeTwoTableQuery(4, 4, 4);
  const Instance instance = testing::RandomInstance(query, 15, rng);
  const QueryFamily family = MakeCountingFamily(query);
  auto result = TwoTable(instance, family, kParams, {}, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->noisy_total, JoinCount(instance) - 1e-9);
  EXPECT_NEAR(result->synthetic.TotalMass(), result->noisy_total, 1e-6);
}

TEST(TwoTableTest, ErrorWithinTheorem33BoundAcrossSeeds) {
  const JoinQuery query = MakeTwoTableQuery(4, 4, 4);
  int within = 0;
  const int seeds = 5;
  for (int seed = 0; seed < seeds; ++seed) {
    Rng rng(500 + static_cast<uint64_t>(seed));
    const Instance instance = testing::RandomInstance(query, 30, rng);
    const QueryFamily family =
        MakeWorkload(query, WorkloadKind::kRandomSign, 3, rng);
    ReleaseOptions options;
    options.pmw_max_rounds = 32;
    auto result = TwoTable(instance, family, kParams, options, rng);
    ASSERT_TRUE(result.ok());
    const double error = WorkloadError(family, instance, result->synthetic);
    const double bound = TwoTableUpperBound(
        JoinCount(instance), TwoTableDelta(instance),
        query.ReleaseDomainSize(),
        static_cast<double>(family.TotalCount()), kParams);
    if (error <= 3.0 * bound) ++within;
  }
  EXPECT_GE(within, seeds - 1);  // allow one unlucky seed
}

TEST(TwoTableTest, CountQueryAnsweredWellOnConcentratedInstance) {
  Rng rng(6);
  const JoinQuery query = MakeTwoTableQuery(4, 4, 4);
  Instance instance = Instance::Make(query);
  // 4 join values with degree 64 per side: count = 4·64² = 16384, large
  // enough to dominate the Δ̃·λ masking noise (~4–8k at these params).
  for (int64_t b = 0; b < 4; ++b) {
    for (int64_t x = 0; x < 4; ++x) {
      ASSERT_TRUE(instance.AddTuple(0, {x, b}, 16).ok());
      ASSERT_TRUE(instance.AddTuple(1, {b, x}, 16).ok());
    }
  }
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kPrefix, 3, rng);
  ReleaseOptions options;
  options.pmw_max_rounds = 32;
  auto result = TwoTable(instance, family, kParams, options, rng);
  ASSERT_TRUE(result.ok());
  // Query 0 is count: the synthetic dataset's count error must be well below
  // the trivial error count(I).
  const auto answers_instance = EvaluateAllOnInstance(family, instance);
  const auto answers_synth =
      EvaluateAllOnTensor(family, result->synthetic);
  const double count = answers_instance[0];
  EXPECT_GT(count, 0.0);
  EXPECT_LT(std::abs(answers_synth[0] - count), count);
}

}  // namespace
}  // namespace dpjoin
