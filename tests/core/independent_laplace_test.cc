#include "core/independent_laplace.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "relational/join_query.h"
#include "sensitivity/residual_sensitivity.h"
#include "testing/brute_force.h"

namespace dpjoin {
namespace {

const PrivacyParams kParams(1.0, 1e-4);

TEST(IndependentLaplaceTest, AnswersAreCenteredOnTruth) {
  Rng rng(1);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const Instance instance = testing::RandomInstance(query, 15, rng);
  const QueryFamily family = MakeCountingFamily(query);
  const double exact = EvaluateAllOnInstance(family, instance)[0];
  SampleStats answers;
  for (int rep = 0; rep < 300; ++rep) {
    Rng run_rng(100 + static_cast<uint64_t>(rep));
    auto result = AnswerIndependently(instance, family, kParams,
                                      CompositionRule::kBasic, run_rng);
    ASSERT_TRUE(result.ok());
    answers.Add(result->answers[0]);
  }
  // Laplace is symmetric: the median estimate should be near the truth
  // relative to the noise scale (Δ̃/ε_q).
  EXPECT_NEAR(answers.Median(), exact, 0.5 * answers.StdDev() + 50.0);
}

TEST(IndependentLaplaceTest, BudgetSplitsAcrossQueries) {
  Rng rng(2);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const Instance instance = testing::RandomInstance(query, 10, rng);
  const QueryFamily small = MakeCountingFamily(query);
  const QueryFamily big =
      MakeWorkload(query, WorkloadKind::kRandomSign, 7, rng);
  auto small_result = AnswerIndependently(instance, small, kParams,
                                          CompositionRule::kBasic, rng);
  auto big_result = AnswerIndependently(instance, big, kParams,
                                        CompositionRule::kBasic, rng);
  ASSERT_TRUE(small_result.ok());
  ASSERT_TRUE(big_result.ok());
  // ε_q = (ε/2)/|Q|.
  EXPECT_DOUBLE_EQ(small_result->per_query_epsilon, 0.5);
  EXPECT_DOUBLE_EQ(big_result->per_query_epsilon, 0.5 / 64.0);
}

TEST(IndependentLaplaceTest, AdvancedBeatsBasicPerQueryBudget) {
  Rng rng(3);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const Instance instance = testing::RandomInstance(query, 10, rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 7, rng);  // |Q| = 64
  auto basic = AnswerIndependently(instance, family, kParams,
                                   CompositionRule::kBasic, rng);
  auto advanced = AnswerIndependently(instance, family, kParams,
                                      CompositionRule::kAdvanced, rng);
  ASSERT_TRUE(basic.ok());
  ASSERT_TRUE(advanced.ok());
  EXPECT_GT(advanced->per_query_epsilon, basic->per_query_epsilon);
  // And the advanced per-round ε actually composes within ε/2.
  const PrivacyParams composed = AdvancedComposition(
      advanced->per_query_epsilon, 0.0, family.TotalCount(),
      kParams.delta / 2);
  EXPECT_LE(composed.epsilon, kParams.epsilon / 2 + 1e-9);
}

TEST(IndependentLaplaceTest, SensitivityBoundDominatesResidual) {
  Rng rng(4);
  const JoinQuery query = MakePathQuery(3, 3);
  const Instance instance = testing::RandomInstance(query, 8, rng);
  const QueryFamily family = MakeCountingFamily(query);
  auto result = AnswerIndependently(instance, family, kParams,
                                    CompositionRule::kBasic, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->delta_tilde,
            ResidualSensitivityValue(instance, 1.0 / kParams.Lambda()) -
                1e-9);
}

TEST(IndependentLaplaceTest, LedgerTotalsToParams) {
  Rng rng(5);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const Instance instance = testing::RandomInstance(query, 10, rng);
  const QueryFamily family = MakeCountingFamily(query);
  auto result = AnswerIndependently(instance, family, kParams,
                                    CompositionRule::kBasic, rng);
  ASSERT_TRUE(result.ok());
  const PrivacyParams total = result->accountant.Total();
  EXPECT_NEAR(total.epsilon, kParams.epsilon, 1e-12);
  EXPECT_NEAR(total.delta, kParams.delta, 1e-15);
}

TEST(IndependentLaplaceTest, RejectsZeroDelta) {
  Rng rng(6);
  const JoinQuery query = MakeTwoTableQuery(2, 2, 2);
  const Instance instance = Instance::Make(query);
  const QueryFamily family = MakeCountingFamily(query);
  PrivacyParams params(1.0, 1e-5);
  params.delta = 0.0;
  EXPECT_FALSE(AnswerIndependently(instance, family, params,
                                   CompositionRule::kBasic, rng)
                   .ok());
}

TEST(IndependentLaplaceTest, ErrorGrowsWithFamilySize) {
  // The paper's motivating claim, in miniature.
  Rng rng(7);
  const JoinQuery query = MakeTwoTableQuery(4, 4, 4);
  const Instance instance = testing::RandomInstance(query, 20, rng);
  SampleStats err_small, err_big;
  for (int rep = 0; rep < 10; ++rep) {
    Rng wl_rng(50 + static_cast<uint64_t>(rep));
    const QueryFamily small =
        MakeWorkload(query, WorkloadKind::kRandomSign, 1, wl_rng);
    const QueryFamily big =
        MakeWorkload(query, WorkloadKind::kRandomSign, 7, wl_rng);
    Rng r1(500 + static_cast<uint64_t>(rep));
    Rng r2(600 + static_cast<uint64_t>(rep));
    auto s = AnswerIndependently(instance, small, kParams,
                                 CompositionRule::kBasic, r1);
    auto b = AnswerIndependently(instance, big, kParams,
                                 CompositionRule::kBasic, r2);
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(b.ok());
    err_small.Add(MaxAbsDifference(EvaluateAllOnInstance(small, instance),
                                   s->answers));
    err_big.Add(MaxAbsDifference(EvaluateAllOnInstance(big, instance),
                                 b->answers));
  }
  // |Q| grows 4 → 64; the per-query budget shrinks 16×, and the max of 64
  // Laplace draws adds another log factor.
  EXPECT_GT(err_big.Median(), 4.0 * err_small.Median());
}

}  // namespace
}  // namespace dpjoin
