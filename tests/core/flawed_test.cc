#include "core/flawed.h"

#include <gtest/gtest.h>

#include "core/two_table.h"
#include "lowerbound/distinguisher.h"
#include "lowerbound/hard_instances.h"
#include "query/workloads.h"

namespace dpjoin {
namespace {

const PrivacyParams kParams(1.0, 1e-5);

ReleaseOptions FastOptions() {
  ReleaseOptions options;
  options.pmw_max_rounds = 4;
  return options;
}

TEST(FlawedTest, NaiveLeaksExactCountInTotalMass) {
  Rng rng(1);
  const Figure1Pair pair = MakeFigure1Pair(8);
  const QueryFamily family = MakeCountingFamily(pair.instance.query());
  auto on_i = FlawedNaiveJoinAsOne(pair.instance, family, kParams,
                                   FastOptions(), rng);
  auto on_i_prime = FlawedNaiveJoinAsOne(pair.neighbor, family, kParams,
                                         FastOptions(), rng);
  ASSERT_TRUE(on_i.ok());
  ASSERT_TRUE(on_i_prime.ok());
  // The released total mass equals count exactly: 8 vs 0 — a perfect
  // distinguisher (the paper's Figure 1 argument).
  EXPECT_DOUBLE_EQ(on_i->synthetic.TotalMass(), 8.0);
  EXPECT_DOUBLE_EQ(on_i_prime->synthetic.TotalMass(), 0.0);
}

TEST(FlawedTest, NaiveEmpiricallyViolatesDp) {
  const Figure1Pair pair = MakeFigure1Pair(8);
  const QueryFamily family = MakeCountingFamily(pair.instance.query());
  Rng rng(2);
  const MechanismStatistic statistic = [&](const Instance& instance,
                                           Rng& run_rng) {
    auto result = FlawedNaiveJoinAsOne(instance, family, kParams,
                                       FastOptions(), run_rng);
    return result.ok() ? result->synthetic.TotalMass() : 0.0;
  };
  const DistinguisherResult verdict = DistinguishByThreshold(
      statistic, pair.instance, pair.neighbor, /*threshold=*/4.0,
      /*trials=*/40, kParams.delta, rng);
  EXPECT_DOUBLE_EQ(verdict.p_event, 1.0);
  EXPECT_DOUBLE_EQ(verdict.p_event_prime, 0.0);
  // Empirical ε far beyond the claimed budget ⇒ DP violated.
  EXPECT_GT(verdict.empirical_epsilon, 3.0 * kParams.epsilon);
}

TEST(FlawedTest, PadMasksTotalButLeaksRegionMass) {
  // Example 3.1: the event is "mass inside D′ is large". The paper's
  // argument needs (a) J̃1 to approximate the region mass (n in D′ under I)
  // and (b) the domain to be polynomially larger than n so the padding
  // rarely lands in D′ under I′. We use dom = 3n and a workload containing
  // the D′-indicator so PMW actually learns the region; ε′ is overridden
  // because the paper's 16√(k·ln 1/δ) constant swamps n = 8 (the flawed
  // algorithm is not DP either way).
  const Figure1Pair pair = MakeFigure1Pair(8, 16);
  const JoinQuery& query = pair.instance.query();
  // Q1 = {ones, 1[B = b0]}, Q2 = {ones, 1[(b0, c0)]}.
  std::vector<TableQuery> q1 = {MakeAllOnesQuery(query, 0)};
  TableQuery region1{"b0", std::vector<double>(
      static_cast<size_t>(query.relation_domain_size(0)), 0.0), {}};
  for (int64_t a = 0; a < 16; ++a) {
    region1.values[static_cast<size_t>(a * 16)] = 1.0;  // tuples (a, b=0)
  }
  q1.push_back(region1);
  std::vector<TableQuery> q2 = {MakeAllOnesQuery(query, 1)};
  TableQuery region2{"b0c0", std::vector<double>(
      static_cast<size_t>(query.relation_domain_size(1)), 0.0), {}};
  region2.values[0] = 1.0;  // tuple (b=0, c=0)
  q2.push_back(region2);
  auto family = QueryFamily::Create(query, {q1, q2});
  ASSERT_TRUE(family.ok());

  ReleaseOptions options;
  options.pmw_rounds = 64;  // MW needs ~ln(|D|/|D′|)/η rounds to concentrate
  options.pmw_epsilon_prime_override = 0.5;
  Rng rng(3);
  const MechanismStatistic region_mass = [&](const Instance& instance,
                                             Rng& run_rng) {
    auto result = FlawedPadThenRelease(instance, *family, kParams, options,
                                       run_rng);
    return result.ok() ? Figure1RegionMass(instance, result->synthetic) : 0.0;
  };
  const DistinguisherResult verdict = DistinguishByThreshold(
      region_mass, pair.instance, pair.neighbor, /*threshold=*/3.5,
      /*trials=*/30, kParams.delta, rng);
  // On I, J̃1 concentrates ~5 units in D′ (the round-average dilutes the
  // early uniform iterates); on I′ the padding rarely puts ≥ 3.5 units
  // into that thin region.
  EXPECT_GT(verdict.p_event, 0.8);
  EXPECT_LT(verdict.p_event_prime, 0.4);
  EXPECT_GT(verdict.empirical_epsilon, kParams.epsilon);
}

TEST(FlawedTest, FixedAlgorithmMasksBothStatistics) {
  // Algorithm 1 (pad FIRST, then release) must NOT be distinguishable via
  // either statistic at these scales: the noisy total has TLap(Δ̃) noise.
  const Figure1Pair pair = MakeFigure1Pair(8);
  const QueryFamily family = MakeCountingFamily(pair.instance.query());
  Rng rng(4);
  const MechanismStatistic total_mass = [&](const Instance& instance,
                                            Rng& run_rng) {
    auto result =
        TwoTable(instance, family, kParams, FastOptions(), run_rng);
    return result.ok() ? result->synthetic.TotalMass() : 0.0;
  };
  const DistinguisherResult verdict = DistinguishByThreshold(
      total_mass, pair.instance, pair.neighbor, /*threshold=*/4.0,
      /*trials=*/40, kParams.delta, rng);
  // Both instances get ~Δλ ≫ 8 of masking mass, so the event fires (or not)
  // for both alike; empirical ε must be small.
  EXPECT_LT(verdict.empirical_epsilon, 1.5);
}

TEST(FlawedTest, PadTotalIsMasked) {
  // The pad variant DOES mask the total (its flaw is elsewhere).
  const Figure1Pair pair = MakeFigure1Pair(8);
  const QueryFamily family = MakeCountingFamily(pair.instance.query());
  Rng rng(5);
  auto result = FlawedPadThenRelease(pair.neighbor, family, kParams,
                                     FastOptions(), rng);
  ASSERT_TRUE(result.ok());
  // Even with count = 0 the output has padded mass.
  EXPECT_GT(result->synthetic.TotalMass(), 0.0);
}

}  // namespace
}  // namespace dpjoin
