#include "core/released_dataset.h"

#include <sstream>

#include <gtest/gtest.h>

#include "core/two_table.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "relational/join.h"
#include "testing/brute_force.h"

namespace dpjoin {
namespace {

ReleasedDataset MakeSmallRelease() {
  auto query = std::make_shared<JoinQuery>(MakeTwoTableQuery(2, 2, 2));
  DenseTensor tensor(MixedRadix({4, 4}));
  tensor.Set(tensor.shape().Encode({0, 0}), 2.0);
  tensor.Set(tensor.shape().Encode({3, 2}), 1.5);
  return ReleasedDataset(query, std::move(tensor));
}

TEST(ReleasedDatasetTest, AnswersMatchDirectEvaluation) {
  Rng rng(1);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const Instance instance = testing::RandomInstance(query, 12, rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 3, rng);
  auto result =
      TwoTable(instance, family, PrivacyParams(1.0, 1e-5), {}, rng);
  ASSERT_TRUE(result.ok());
  const ReleasedDataset dataset(instance.query_ptr(),
                                std::move(result->synthetic));
  const auto all = dataset.AnswerAll(family);
  for (int64_t q = 0; q < family.TotalCount(); ++q) {
    // Contraction and odometer evaluation differ only in FP summation order.
    EXPECT_NEAR(all[static_cast<size_t>(q)],
                dataset.Answer(family, family.Decompose(q)), 1e-8);
  }
  EXPECT_NEAR(dataset.TotalMass(), result->noisy_total, 1e-6);
}

TEST(ReleasedDatasetTest, QuantizedIsIntegerAndMassPreservingInExpectation) {
  const ReleasedDataset dataset = MakeSmallRelease();
  Rng rng(2);
  double total = 0.0;
  const int reps = 2000;
  for (int rep = 0; rep < reps; ++rep) {
    const ReleasedDataset q = dataset.Quantized(rng);
    for (double v : q.tensor().values()) {
      EXPECT_EQ(v, std::floor(v));
    }
    total += q.TotalMass();
  }
  EXPECT_NEAR(total / reps, dataset.TotalMass(), 0.05);
}

TEST(ReleasedDatasetTest, CsvHeaderNamesRelationAttributes) {
  const ReleasedDataset dataset = MakeSmallRelease();
  EXPECT_EQ(dataset.CsvHeader(), "R1.A,R1.B,R2.B,R2.C,mass");
}

TEST(ReleasedDatasetTest, CsvRowsListPositiveCells) {
  const ReleasedDataset dataset = MakeSmallRelease();
  std::ostringstream oss;
  ASSERT_TRUE(dataset.WriteCsv(oss).ok());
  const std::string csv = oss.str();
  // Header + 2 positive cells.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  // Cell (R1=(0,0), R2=(0,0)) mass 2.
  EXPECT_NE(csv.find("0,0,0,0,2\n"), std::string::npos);
  // Cell (R1 code 3 = (1,1), R2 code 2 = (1,0)) mass 1.5.
  EXPECT_NE(csv.find("1,1,1,0,1.5\n"), std::string::npos);
}

TEST(ReleasedDatasetTest, QuantizedCsvRoundTripAnswersStayClose) {
  Rng rng(3);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const Instance instance = testing::RandomInstance(query, 30, rng);
  const QueryFamily family = MakeCountingFamily(query);
  auto result =
      TwoTable(instance, family, PrivacyParams(1.0, 1e-5), {}, rng);
  ASSERT_TRUE(result.ok());
  ReleasedDataset dataset(instance.query_ptr(), std::move(result->synthetic));
  const double before = dataset.Answer(family, {0, 0});
  const ReleasedDataset quantized = dataset.Quantized(rng);
  const double after = quantized.Answer(family, {0, 0});
  // Hoeffding: deviation O(sqrt(#cells)) — generous envelope.
  EXPECT_LE(std::abs(after - before),
            3.0 * std::sqrt(static_cast<double>(dataset.tensor().size())));
}

}  // namespace
}  // namespace dpjoin
