#include "core/uniformize.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "core/two_table.h"
#include "lowerbound/hard_instances.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "relational/join.h"
#include "relational/join_query.h"
#include "testing/brute_force.h"

namespace dpjoin {
namespace {

// δ = 0.01 keeps λ and the TLap shift τ small enough that degree buckets
// actually separate at test scale (τ(ε, δ, 1) ≈ λ·ln(1/δ) would otherwise
// swamp the degrees).
const PrivacyParams kParams(1.0, 1e-2);

TEST(UniformizeTest, ReleasesMassForEveryBucket) {
  Rng rng(1);
  const Instance instance = MakeFigure3Instance(8);
  const QueryFamily family =
      MakeCountingFamily(instance.query());
  ReleaseOptions options;
  options.pmw_max_rounds = 8;
  auto result =
      UniformizeTwoTable(instance, family, kParams, options, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->bucket_info.empty());
  EXPECT_GT(result->release.synthetic.TotalMass(), 0.0);
  // Per-bucket join sizes sum to the total.
  double bucket_total = 0.0;
  for (const auto& info : result->bucket_info) bucket_total += info.count;
  EXPECT_DOUBLE_EQ(bucket_total, JoinCount(instance));
}

TEST(UniformizeTest, AccountantReflectsLemma41Composition) {
  Rng rng(2);
  const Instance instance = MakeFigure3Instance(6);
  const QueryFamily family = MakeCountingFamily(instance.query());
  ReleaseOptions options;
  options.pmw_max_rounds = 4;
  auto result =
      UniformizeTwoTable(instance, family, kParams, options, rng);
  ASSERT_TRUE(result.ok());
  // partition (ε/2, δ/2) + parallel buckets (ε/2, δ/2) = (ε, δ).
  const PrivacyParams total = result->release.accountant.Total();
  EXPECT_NEAR(total.epsilon, kParams.epsilon, 1e-12);
  EXPECT_NEAR(total.delta, kParams.delta, 1e-15);
}

TEST(UniformizeTest, PerBucketSensitivityBelowGlobal) {
  // The whole point of uniformization: buckets have Δ̃ near their own degree
  // ceiling, far below the global Δ for skewed data. Degrees 1..40 separate
  // into multiple buckets even after the +TLap(τ(ε/2, δ/2, 1)) shift.
  Rng rng(3);
  const Instance instance = MakeFigure3Instance(40);  // degrees 1..40
  const QueryFamily family = MakeCountingFamily(instance.query());
  ReleaseOptions options;
  options.pmw_max_rounds = 4;
  auto result =
      UniformizeTwoTable(instance, family, kParams, options, rng);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->bucket_info.size(), 2u);
  double min_delta = 1e18, max_delta = 0.0;
  for (const auto& info : result->bucket_info) {
    min_delta = std::min(min_delta, info.delta_tilde);
    max_delta = std::max(max_delta, info.delta_tilde);
  }
  EXPECT_LT(min_delta, 0.8 * max_delta);  // low buckets are cheaper
}

TEST(UniformizeTest, BeatsPlainTwoTableOnFigure3Shape) {
  // Figure 3 story: on the degree staircase, Algorithm 4's per-bucket Δ̃ is
  // far below the global Δ, so the per-bucket count masks are smaller and
  // the workload error drops. Compare median errors across seeds (the
  // bench_fig3_uniformize_gap binary measures the full k^{1/3} scaling).
  const Instance instance = MakeFigure3Instance(24);
  Rng workload_rng(999);
  const QueryFamily family = MakeWorkload(
      instance.query(), WorkloadKind::kRandomSign, 2, workload_rng);
  ReleaseOptions options;
  options.pmw_max_rounds = 12;
  options.pmw_epsilon_prime_override = 0.25;  // shape, not DP calibration

  SampleStats plain_errors, uniform_errors;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng1(2000 + seed), rng2(3000 + seed);
    auto plain = TwoTable(instance, family, kParams, options, rng1);
    auto uniform =
        UniformizeTwoTable(instance, family, kParams, options, rng2);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(uniform.ok());
    plain_errors.Add(WorkloadError(family, instance, plain->synthetic));
    uniform_errors.Add(
        WorkloadError(family, instance, uniform->release.synthetic));
  }
  // At this scale the per-bucket TLap count masks dominate and they ADD
  // across buckets (this is the λ^{3/2}·(Δ+λ) vs √λ·(Δ+λ) additive-term gap
  // in Theorem 4.4 vs 3.3 — uniformize pays one mask per bucket). The
  // asymptotic k^{1/3} win needs count ≫ λ³·Δ and is measured by
  // bench_fig3_uniformize_gap; here we bound the constant-factor overhead.
  EXPECT_LT(uniform_errors.Median(), plain_errors.Median() * 8.0);
}

TEST(UniformizeTest, EmptyInstanceReleasesEmptySet) {
  Rng rng(5);
  const Instance instance = Instance::Make(MakeTwoTableQuery(4, 4, 4));
  const QueryFamily family = MakeCountingFamily(instance.query());
  auto result = UniformizeTwoTable(instance, family, kParams, {}, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->bucket_info.empty());
  EXPECT_DOUBLE_EQ(result->release.synthetic.TotalMass(), 0.0);
}

}  // namespace
}  // namespace dpjoin
