#include "core/multi_table.h"

#include <gtest/gtest.h>

#include "core/theory_bounds.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "relational/generators.h"
#include "relational/join.h"
#include "relational/join_query.h"
#include "sensitivity/residual_sensitivity.h"
#include "testing/brute_force.h"

namespace dpjoin {
namespace {

const PrivacyParams kParams(1.0, 1e-4);

TEST(MultiTableTest, DeltaTildeUpperBoundsResidualSensitivity) {
  Rng rng(1);
  const JoinQuery query = MakePathQuery(3, 3);
  for (int rep = 0; rep < 4; ++rep) {
    const Instance instance = testing::RandomInstance(query, 10, rng);
    const QueryFamily family = MakeCountingFamily(query);
    auto result = MultiTable(instance, family, kParams, {}, rng);
    ASSERT_TRUE(result.ok());
    const double beta = 1.0 / kParams.Lambda();
    // e^{TLap} ≥ 1, so Δ̃ ≥ RS^β(I).
    EXPECT_GE(result->delta_tilde,
              ResidualSensitivityValue(instance, beta) - 1e-9);
  }
}

TEST(MultiTableTest, DeltaTildeIsConstantApproximationOfRs) {
  // TLap ≤ 2τ(ε/2, δ/2, β) and β = 1/λ makes e^{TLap} = O(1) (paper §3.3
  // error analysis): check the multiplicative blowup is bounded.
  Rng rng(2);
  const JoinQuery query = MakePathQuery(3, 3);
  const Instance instance = testing::RandomInstance(query, 10, rng);
  const QueryFamily family = MakeCountingFamily(query);
  const double beta = 1.0 / kParams.Lambda();
  const double rs = ResidualSensitivityValue(instance, beta);
  for (int rep = 0; rep < 10; ++rep) {
    auto result = MultiTable(instance, family, kParams, {}, rng);
    ASSERT_TRUE(result.ok());
    const double blowup = result->delta_tilde / rs;
    EXPECT_GE(blowup, 1.0 - 1e-9);
    // 2τ(ε/2,δ/2,β) with β = 1/λ gives exp(2τ) ≤ exp(O(1)); generous cap.
    EXPECT_LE(blowup, 150.0);
  }
}

TEST(MultiTableTest, WorksOnTwoTableQueriesToo) {
  Rng rng(3);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const Instance instance = testing::RandomInstance(query, 12, rng);
  const QueryFamily family = MakeCountingFamily(query);
  auto result = MultiTable(instance, family, kParams, {}, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->delta_tilde, 0.0);
}

TEST(MultiTableTest, BudgetLedgerTotalsToParams) {
  Rng rng(4);
  const JoinQuery query = MakePathQuery(3, 3);
  const Instance instance = testing::RandomInstance(query, 8, rng);
  const QueryFamily family = MakeCountingFamily(query);
  auto result = MultiTable(instance, family, kParams, {}, rng);
  ASSERT_TRUE(result.ok());
  const PrivacyParams total = result->accountant.Total();
  EXPECT_NEAR(total.epsilon, kParams.epsilon, 1e-12);
  EXPECT_NEAR(total.delta, kParams.delta, 1e-15);
}

TEST(MultiTableTest, RejectsZeroDelta) {
  Rng rng(5);
  const JoinQuery query = MakePathQuery(3, 2);
  const Instance instance = Instance::Make(query);
  const QueryFamily family = MakeCountingFamily(query);
  PrivacyParams params(1.0, 1e-5);
  params.delta = 0.0;
  EXPECT_TRUE(MultiTable(instance, family, params, {}, rng)
                  .status()
                  .IsInvalidArgument());
}

TEST(MultiTableTest, ErrorWithinTheorem15BoundAcrossSeeds) {
  const JoinQuery query = MakePathQuery(3, 3);
  int within = 0;
  const int seeds = 4;
  for (int seed = 0; seed < seeds; ++seed) {
    Rng rng(700 + static_cast<uint64_t>(seed));
    const Instance instance = testing::RandomInstance(query, 12, rng);
    const QueryFamily family =
        MakeWorkload(query, WorkloadKind::kRandomSign, 2, rng);
    ReleaseOptions options;
    options.pmw_max_rounds = 24;
    auto result = MultiTable(instance, family, kParams, options, rng);
    ASSERT_TRUE(result.ok());
    const double error = WorkloadError(family, instance, result->synthetic);
    // Theorem A.1's bound with the Δ̃ the algorithm actually used (the
    // Theorem 1.5 statement folds e^{2τ} = O(1) into its constant).
    const double bound = MultiTableUpperBound(
        JoinCount(instance), result->delta_tilde,
        query.ReleaseDomainSize(),
        static_cast<double>(family.TotalCount()), kParams);
    if (error <= 3.0 * bound) ++within;
  }
  EXPECT_GE(within, seeds - 1);
}

TEST(MultiTableTest, HandlesEmptyInstance) {
  Rng rng(6);
  const JoinQuery query = MakePathQuery(3, 3);
  const Instance instance = Instance::Make(query);
  const QueryFamily family = MakeCountingFamily(query);
  auto result = MultiTable(instance, family, kParams, {}, rng);
  ASSERT_TRUE(result.ok());
  // RS > 0 even on empty data, so the release succeeds with bounded mass.
  EXPECT_GT(result->delta_tilde, 0.0);
  EXPECT_GE(result->synthetic.TotalMass(), 0.0);
}

}  // namespace
}  // namespace dpjoin
