#include "core/partition_two_table.h"

#include <cmath>

#include <gtest/gtest.h>

#include "lowerbound/hard_instances.h"
#include "relational/generators.h"
#include "relational/join.h"
#include "relational/join_query.h"
#include "testing/brute_force.h"

namespace dpjoin {
namespace {

const PrivacyParams kParams(1.0, 1e-4);

int64_t TotalInputSize(const TwoTablePartition& partition) {
  int64_t total = 0;
  for (const auto& bucket : partition.buckets) {
    total += bucket.sub_instance.InputSize();
  }
  return total;
}

TEST(PartitionTwoTableTest, RejectsNonTwoTable) {
  Rng rng(1);
  const Instance instance = Instance::Make(MakePathQuery(3, 2));
  EXPECT_TRUE(PartitionTwoTable(instance, kParams, 0.0, rng)
                  .status()
                  .IsInvalidArgument());
}

TEST(PartitionTwoTableTest, TuplesArePartitionedExactly) {
  Rng rng(2);
  const JoinQuery query = MakeTwoTableQuery(6, 6, 6);
  const Instance instance = MakeZipfTwoTableInstance(query, 80, 1.2, rng);
  auto partition = PartitionTwoTable(instance, kParams, 0.0, rng);
  ASSERT_TRUE(partition.ok());
  // Every tuple appears in exactly one bucket (tuple-disjointness is what
  // gives parallel composition in Lemma 4.1).
  EXPECT_EQ(TotalInputSize(*partition), instance.InputSize());
  for (int rel = 0; rel < 2; ++rel) {
    for (const auto& [code, freq] : instance.relation(rel).entries()) {
      int owners = 0;
      for (const auto& bucket : partition->buckets) {
        const int64_t f = bucket.sub_instance.relation(rel).Frequency(code);
        if (f > 0) {
          ++owners;
          EXPECT_EQ(f, freq);
        }
      }
      EXPECT_EQ(owners, 1);
    }
  }
}

TEST(PartitionTwoTableTest, JoinSizesSumToTotal) {
  Rng rng(3);
  const JoinQuery query = MakeTwoTableQuery(6, 6, 6);
  const Instance instance = MakeZipfTwoTableInstance(query, 60, 1.0, rng);
  auto partition = PartitionTwoTable(instance, kParams, 0.0, rng);
  ASSERT_TRUE(partition.ok());
  double total = 0.0;
  for (const auto& bucket : partition->buckets) {
    total += JoinCount(bucket.sub_instance);
  }
  // Join values are split whole, so per-bucket joins partition the join.
  EXPECT_DOUBLE_EQ(total, JoinCount(instance));
}

TEST(PartitionTwoTableTest, BucketsSeparateJoinValuesNotTuples) {
  Rng rng(4);
  const JoinQuery query = MakeTwoTableQuery(6, 6, 6);
  const Instance instance = MakeZipfTwoTableInstance(query, 60, 1.0, rng);
  auto partition = PartitionTwoTable(instance, kParams, 0.0, rng);
  ASSERT_TRUE(partition.ok());
  // A join value's tuples (on both sides) land in the same bucket: for each
  // join value b, at most one bucket has tuples with that b.
  const int b_attr = query.AttributeIndex("B").value();
  for (int64_t b = 0; b < query.domain_size(b_attr); ++b) {
    int owners = 0;
    for (const auto& bucket : partition->buckets) {
      bool has = false;
      for (int rel = 0; rel < 2; ++rel) {
        const auto degrees = bucket.sub_instance.relation(rel).DegreeMap(
            AttributeSet::Of(b_attr));
        if (degrees.count(b) > 0) has = true;
      }
      if (has) ++owners;
    }
    EXPECT_LE(owners, 1) << "join value " << b;
  }
}

TEST(PartitionTwoTableTest, UniformPartitionBucketsByTrueDegree) {
  // Figure 3 instance: degrees 1..k; with λ = 1, value with degree d goes to
  // bucket ⌈log2 d⌉ (≥ 1).
  const Instance instance = MakeFigure3Instance(8);
  auto partition = UniformPartitionTwoTable(instance, 1.0);
  ASSERT_TRUE(partition.ok());
  for (const auto& bucket : partition->buckets) {
    const AttributeSet b_set = AttributeSet::Of(1);
    for (int rel = 0; rel < 2; ++rel) {
      for (const auto& [value, deg] :
           bucket.sub_instance.relation(rel).DegreeMap(b_set)) {
        (void)value;
        const int expected =
            std::max(1, static_cast<int>(std::ceil(std::log2(
                         static_cast<double>(deg)))));
        EXPECT_EQ(bucket.bucket_index, expected) << "degree " << deg;
      }
    }
  }
}

TEST(PartitionTwoTableTest, NoisyBucketsNearTrueBuckets) {
  // Theorem 4.4's proof: noisy-degree buckets differ from true buckets by at
  // most one level (B^i_1 ⊆ B^i_2 ∪ B^{i+1}_2).
  Rng rng(5);
  const Instance instance = MakeFigure3Instance(12);
  const double lambda = 2.0;
  auto noisy = PartitionTwoTable(instance, kParams, lambda, rng);
  auto uniform = UniformPartitionTwoTable(instance, lambda);
  ASSERT_TRUE(noisy.ok());
  ASSERT_TRUE(uniform.ok());
  // Map join value → bucket for both partitions.
  auto bucket_map = [](const TwoTablePartition& partition) {
    std::unordered_map<int64_t, int> map;
    for (const auto& bucket : partition.buckets) {
      for (int rel = 0; rel < 2; ++rel) {
        for (const auto& [value, deg] :
             bucket.sub_instance.relation(rel).DegreeMap(AttributeSet::Of(1))) {
          (void)deg;
          map[value] = bucket.bucket_index;
        }
      }
    }
    return map;
  };
  const auto noisy_map = bucket_map(*noisy);
  const auto uniform_map = bucket_map(*uniform);
  for (const auto& [value, true_bucket] : uniform_map) {
    const auto it = noisy_map.find(value);
    ASSERT_NE(it, noisy_map.end());
    // τ(ε, δ, 1) noise can push a degree up by ≤ 2τ ~ O(λ·ln(1/δ)); with
    // geometric buckets that is at most a couple of levels here.
    EXPECT_LE(std::abs(it->second - true_bucket), 3) << "value " << value;
    EXPECT_GE(it->second, true_bucket);  // noise is non-negative
  }
}

TEST(PartitionTwoTableTest, EmptyInstanceYieldsNoBuckets) {
  Rng rng(6);
  const Instance instance = Instance::Make(MakeTwoTableQuery(4, 4, 4));
  auto partition = PartitionTwoTable(instance, kParams, 0.0, rng);
  ASSERT_TRUE(partition.ok());
  EXPECT_TRUE(partition->buckets.empty());
}

}  // namespace
}  // namespace dpjoin
