#include "core/theory_bounds.h"

#include <cmath>

#include <gtest/gtest.h>

#include "relational/join_query.h"

namespace dpjoin {
namespace {

const PrivacyParams kParams(1.0, 1e-5);

TEST(TheoryBoundsTest, SingleTableScalesAsSqrtN) {
  const double b1 = SingleTableUpperBound(100.0, 4096.0, 64.0, kParams);
  const double b2 = SingleTableUpperBound(400.0, 4096.0, 64.0, kParams);
  EXPECT_NEAR(b2 / b1, 2.0, 1e-9);
}

TEST(TheoryBoundsTest, SingleTableLowerBoundMinimum) {
  // For tiny n the n term dominates; for large n the √n·f term is smaller
  // than n.
  const double small = SingleTableLowerBound(2.0, 1e6, kParams);
  EXPECT_LE(small, 2.0 + 1e-9);
  const double large = SingleTableLowerBound(1e6, 1e6, kParams);
  EXPECT_LT(large, 1e6);
  EXPECT_NEAR(large, std::sqrt(1e6) * FLower(1e6, 1.0), 1e-6);
}

TEST(TheoryBoundsTest, TwoTableBoundIsPmwWithDeltaPlusLambda) {
  const double count = 1000.0, delta = 8.0;
  const double lambda = kParams.Lambda();
  EXPECT_NEAR(TwoTableUpperBound(count, delta, 4096.0, 64.0, kParams),
              PmwUpperBound(count, delta + lambda, 4096.0, 64.0, kParams),
              1e-9);
}

TEST(TheoryBoundsTest, JoinLowerBoundShape) {
  // √(OUT·Δ)·f_lower when that is below OUT.
  const double out = 1e6, delta = 4.0;
  EXPECT_NEAR(JoinLowerBound(out, delta, 4096.0, kParams),
              std::sqrt(out * delta) * FLower(4096.0, 1.0), 1e-6);
  // min kicks in for small OUT.
  EXPECT_DOUBLE_EQ(JoinLowerBound(1.0, 100.0, 4096.0, kParams), 1.0);
}

TEST(TheoryBoundsTest, UpperAndLowerBoundsBracketTheSqrtOutDeltaShape) {
  // Up to log factors, upper/lower differ by f_upper/f_lower and the Δ vs
  // Δ+λ gap; the ratio must be bounded by polylog terms.
  const double out = 1e5, delta = 16.0;
  const double up = TwoTableUpperBound(out, delta, 4096.0, 64.0, kParams);
  const double lo = JoinLowerBound(out, delta, 4096.0, kParams);
  EXPECT_GT(up, lo);       // upper bound above lower bound
  EXPECT_LT(up / lo, 60.0);  // but only by polylog factors
}

TEST(TheoryBoundsTest, UniformizedBoundBeatsFlatBoundOnSkewedProfiles) {
  // Example 4.2 shape: mass spread over buckets with geometric degrees is
  // cheaper than paying max-degree for the full count.
  const double lambda = kParams.Lambda();
  std::vector<double> buckets;  // bucket i has count k²·2^{-i}·(λ·2^i)...
  double total = 0.0;
  const double k2 = 1e8;
  for (int i = 0; i < 8; ++i) {
    const double count_i = k2 / std::pow(2.0, i);
    buckets.push_back(count_i);
    total += count_i;
  }
  const double delta = lambda * std::pow(2.0, 8.0);
  const double uniformized = UniformizedTwoTableUpperBound(
      buckets, delta, 4096.0, 64.0, kParams);
  const double flat = TwoTableUpperBound(total, delta, 4096.0, 64.0, kParams);
  EXPECT_LT(uniformized, flat);
}

TEST(TheoryBoundsTest, UniformizedLowerBoundTakesBestBucket) {
  const std::vector<double> buckets = {100.0, 10000.0, 25.0};
  const double bound =
      UniformizedTwoTableLowerBound(buckets, 4096.0, kParams);
  // Must be at least the bucket-2 term.
  const double lambda = kParams.Lambda();
  const double bucket2 = std::min(
      10000.0, std::sqrt(10000.0 * 4.0 * lambda) * FLower(4096.0, 1.0));
  EXPECT_GE(bound, bucket2 - 1e-9);
}

TEST(TheoryBoundsTest, WorstCase01Exponents) {
  // Two-table: ρ(H) = 2, worst residual: E={R1}, ∂E={B} leaves edge {A}
  // with ρ = 1 ⇒ exponent (2+1)/2 = 1.5.
  EXPECT_NEAR(WorstCaseErrorExponent01(MakeTwoTableQuery(2, 2, 2)), 1.5,
              1e-6);
  // 3-path: ρ = 2; residual worst case: E = {R1,R3}, ∂E = {X1, X2}? edges
  // {X0},{X3} ⇒ ρ_res = 2 ⇒ exponent 2. (At minimum it's ≥ 1.5.)
  const double path_exp = WorstCaseErrorExponent01(MakePathQuery(3, 2));
  EXPECT_GE(path_exp, 1.5);
  EXPECT_LE(path_exp, 2.5);
}

TEST(TheoryBoundsTest, WorstCaseWeightedExponent) {
  EXPECT_DOUBLE_EQ(
      WorstCaseErrorExponentWeighted(MakeTwoTableQuery(2, 2, 2)), 1.5);
  EXPECT_DOUBLE_EQ(WorstCaseErrorExponentWeighted(MakePathQuery(3, 2)), 2.5);
}

}  // namespace
}  // namespace dpjoin
