#include "engine/serving.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "query/evaluation.h"
#include "query/workloads.h"
#include "testing/brute_force.h"

namespace dpjoin {
namespace {

struct SyntheticFixture {
  std::shared_ptr<const ReleasedDataset> dataset;
  QueryFamily family;
  Plan plan;
};

SyntheticFixture MakeSyntheticFixture(uint64_t seed = 5) {
  Rng rng(seed);
  const auto query =
      std::make_shared<JoinQuery>(MakeTwoTableQuery(4, 5, 4));
  const Instance instance = testing::RandomInstance(*query, 20, rng);
  QueryFamily family = MakeWorkload(*query, WorkloadKind::kRandomSign, 3, rng);
  Plan plan;
  plan.mechanism = MechanismKind::kPmw;
  plan.rationale = "test fixture";
  // Any tensor is a valid "release" for serving-layer purposes.
  auto dataset =
      std::make_shared<const ReleasedDataset>(query, JoinTensor(instance));
  return SyntheticFixture{std::move(dataset), std::move(family),
                          std::move(plan)};
}

TEST(ServingHandleTest, BatchAnswersMatchDirectEvaluation) {
  SyntheticFixture fx = MakeSyntheticFixture();
  const ServingHandle handle(fx.dataset, fx.family, fx.plan);
  const std::vector<double> all = EvaluateAllOnTensor(fx.family,
                                                      fx.dataset->tensor());
  std::vector<int64_t> batch;
  for (int64_t q = 0; q < handle.NumQueries(); ++q) batch.push_back(q);
  batch.push_back(0);  // duplicates allowed
  auto answers = handle.AnswerBatch(batch);
  ASSERT_TRUE(answers.ok()) << answers.status();
  ASSERT_EQ(answers->size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_NEAR((*answers)[i], all[static_cast<size_t>(batch[i])], 1e-9)
        << "batch slot " << i;
  }
  // AnswerAll (contraction path) agrees too.
  const std::vector<double> served_all = handle.AnswerAll();
  ASSERT_EQ(served_all.size(), all.size());
  for (size_t q = 0; q < all.size(); ++q) {
    EXPECT_EQ(served_all[q], all[q]);
  }
}

TEST(ServingHandleTest, BatchBitIdenticalAcrossThreadCounts) {
  SyntheticFixture fx = MakeSyntheticFixture(6);
  const ServingHandle handle(fx.dataset, fx.family, fx.plan);
  Rng rng(7);
  std::vector<int64_t> batch;
  for (int i = 0; i < 200; ++i) {
    batch.push_back(rng.UniformInt(0, handle.NumQueries() - 1));
  }
  const std::vector<double> baseline = *handle.AnswerBatch(batch, 1);
  for (int threads : {2, 8}) {
    const auto answers = handle.AnswerBatch(batch, threads);
    ASSERT_TRUE(answers.ok());
    ASSERT_EQ(answers->size(), baseline.size());
    for (size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ((*answers)[i], baseline[i])
          << "slot " << i << ", threads = " << threads;
    }
  }
}

TEST(ServingHandleTest, RejectsOutOfRangeQueryIds) {
  SyntheticFixture fx = MakeSyntheticFixture();
  const ServingHandle handle(fx.dataset, fx.family, fx.plan);
  EXPECT_TRUE(
      handle.AnswerBatch({handle.NumQueries()}).status().IsOutOfRange());
  EXPECT_TRUE(handle.AnswerBatch({-1}).status().IsOutOfRange());
  auto empty = handle.AnswerBatch({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(ServingHandleTest, DirectAnswerHandleServesLookups) {
  SyntheticFixture fx = MakeSyntheticFixture(8);
  std::vector<double> answers(
      static_cast<size_t>(fx.family.TotalCount()));
  for (size_t q = 0; q < answers.size(); ++q) {
    answers[q] = static_cast<double>(q) * 1.5;
  }
  Plan plan;
  plan.mechanism = MechanismKind::kLaplace;
  const ServingHandle handle(answers, fx.family, plan);
  EXPECT_EQ(handle.dataset(), nullptr);
  auto batch = handle.AnswerBatch({3, 0, 3});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(*batch, (std::vector<double>{4.5, 0.0, 4.5}));
  EXPECT_EQ(handle.AnswerAll(), answers);
}

struct FactoredFixture {
  std::shared_ptr<const ReleasedDataset> dataset;
  std::shared_ptr<const FactoredTensor> tensor;
  QueryFamily family;
  Plan plan;
};

FactoredFixture MakeFactoredFixture(uint64_t seed = 13) {
  Rng rng(seed);
  const auto query = std::make_shared<JoinQuery>(
      *JoinQuery::Create({{"A", 5}, {"B", 3}, {"C", 4}}, {{"A", "B", "C"}}));
  QueryFamily family =
      MakeWorkload(*query, WorkloadKind::kMarginalAll, 0, rng);
  auto tensor = std::make_shared<FactoredTensor>(
      query->tuple_space(0), std::vector<std::vector<size_t>>{{0}, {1}, {2}},
      42.0);
  // Skew each factor so answers are non-trivial.
  for (size_t k = 0; k < 3; ++k) {
    for (double& v : *tensor->mutable_factor_values(k)) {
      v *= rng.UniformDouble(0.5, 1.5);
    }
  }
  std::shared_ptr<const FactoredTensor> frozen = std::move(tensor);
  Plan plan;
  plan.mechanism = MechanismKind::kPmw;
  plan.factored = true;
  plan.rationale = "test fixture";
  auto dataset = std::make_shared<const ReleasedDataset>(query, frozen);
  return FactoredFixture{std::move(dataset), std::move(frozen),
                         std::move(family), std::move(plan)};
}

TEST(ServingHandleTest, FactoredBackingServesBatchesAndAnswerAll) {
  FactoredFixture fx = MakeFactoredFixture();
  const ServingHandle handle(fx.dataset, fx.family, fx.plan);
  ASSERT_NE(handle.evaluator(), nullptr);
  EXPECT_TRUE(handle.evaluator()->factored());
  ASSERT_NE(handle.dataset()->factored(), nullptr);

  // Every served answer matches the dense materialization's answer.
  const DenseTensor dense = fx.tensor->ToDense();
  std::vector<int64_t> batch;
  for (int64_t q = 0; q < handle.NumQueries(); ++q) batch.push_back(q);
  batch.push_back(1);  // duplicates allowed
  auto answers = handle.AnswerBatch(batch);
  ASSERT_TRUE(answers.ok()) << answers.status();
  const std::vector<double> all = handle.AnswerAll();
  ASSERT_EQ(static_cast<int64_t>(all.size()), fx.family.TotalCount());
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto parts = fx.family.Decompose(batch[i]);
    const double want =
        fx.dataset->Answer(fx.family, parts);  // AnswerProduct path
    EXPECT_NEAR((*answers)[i], want, 1e-9 * (1.0 + std::abs(want)));
    EXPECT_NEAR(all[static_cast<size_t>(batch[i])], want,
                1e-9 * (1.0 + std::abs(want)));
  }
  // Thread counts do not change a single bit.
  for (const int threads : {1, 2, 8}) {
    auto again = handle.AnswerBatch(batch, threads);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, *answers) << "threads=" << threads;
    EXPECT_EQ(handle.AnswerAll(threads), all) << "threads=" << threads;
  }
}

TEST(ServingHandleTest, CompatibleMechanismEvaluatorIsShared) {
  FactoredFixture fx = MakeFactoredFixture(14);
  auto shared = std::make_shared<const WorkloadEvaluator>(
      WorkloadEvaluator::ForFactored(fx.family, *fx.tensor));
  const ServingHandle handle(fx.dataset, fx.family, fx.plan, shared);
  // Same object, not an equivalent rebuild.
  EXPECT_EQ(handle.evaluator(), shared.get());

  // An incompatible evaluator (dense, wrong shape) is ignored.
  SyntheticFixture other = MakeSyntheticFixture(15);
  auto mismatched = std::make_shared<const WorkloadEvaluator>(
      other.family, other.dataset->tensor().shape());
  const ServingHandle fresh(fx.dataset, fx.family, fx.plan, mismatched);
  EXPECT_NE(fresh.evaluator(), mismatched.get());
  ASSERT_NE(fresh.evaluator(), nullptr);
  EXPECT_TRUE(fresh.evaluator()->factored());
}

TEST(ServingHandleTest, DenseHandleSharesCompatibleEvaluatorToo) {
  SyntheticFixture fx = MakeSyntheticFixture(16);
  auto shared = std::make_shared<const WorkloadEvaluator>(
      fx.family, fx.dataset->tensor().shape());
  const ServingHandle handle(fx.dataset, fx.family, fx.plan, shared);
  EXPECT_EQ(handle.evaluator(), shared.get());
}

std::shared_ptr<const ServingHandle> MakeDummyHandle(double tag) {
  SyntheticFixture fx = MakeSyntheticFixture(9);
  std::vector<double> answers(static_cast<size_t>(fx.family.TotalCount()),
                              tag);
  Plan plan;
  plan.mechanism = MechanismKind::kLaplace;
  return std::make_shared<const ServingHandle>(std::move(answers), fx.family,
                                               plan);
}

TEST(ReleaseCacheTest, LruEvictionAndRecency) {
  ReleaseCache cache(2);
  cache.Put(1, MakeDummyHandle(1.0));
  cache.Put(2, MakeDummyHandle(2.0));
  EXPECT_EQ(cache.size(), 2u);

  // Touch 1 so 2 becomes least-recently-used, then insert 3: 2 is evicted.
  ASSERT_NE(cache.Get(1), nullptr);
  cache.Put(3, MakeDummyHandle(3.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);

  EXPECT_EQ(cache.hits(), 3);
  EXPECT_EQ(cache.misses(), 1);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get(1), nullptr);
}

TEST(ReleaseCacheTest, PutRefreshesExistingKey) {
  ReleaseCache cache(2);
  auto first = MakeDummyHandle(1.0);
  auto second = MakeDummyHandle(2.0);
  cache.Put(1, first);
  cache.Put(2, MakeDummyHandle(9.0));
  cache.Put(1, second);  // refresh key 1 → most recent
  cache.Put(3, MakeDummyHandle(3.0));  // evicts key 2
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_EQ(cache.Get(1), second);
}

TEST(ReleaseCacheTest, TouchBumpsRecencyWithoutCountingStats) {
  ReleaseCache cache(2);
  auto handle = MakeDummyHandle(1.0);
  cache.Put(1, handle);
  cache.Put(2, MakeDummyHandle(2.0));
  // Touch finds the handle and protects it from eviction...
  EXPECT_EQ(cache.Touch(1), handle);
  EXPECT_EQ(cache.Touch(99), nullptr);
  cache.Put(3, MakeDummyHandle(3.0));  // evicts 2 (LRU), not the touched 1
  EXPECT_NE(cache.Touch(1), nullptr);
  EXPECT_EQ(cache.Touch(2), nullptr);
  // ...but never moves the hit/miss counters (query traffic must not skew
  // the submission-dedup ratio).
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);
}

TEST(ReleaseCacheTest, GetInterleavedWithReplacingPutStaysConsistent) {
  // A Put of an existing key must atomically replace BOTH the stored
  // handle and its LRU slot: a concurrent Get sees either the old or the
  // new handle (never null, never a mix), and the key occupies exactly one
  // LRU position afterwards.
  ReleaseCache cache(2);
  auto old_handle = MakeDummyHandle(1.0);
  cache.Put(1, old_handle);
  std::atomic<bool> stop{false};
  std::atomic<int> nulls{0};
  std::thread getter([&] {
    while (!stop.load()) {
      if (cache.Get(1) == nullptr) nulls.fetch_add(1);
    }
  });
  for (int i = 0; i < 2000; ++i) {
    cache.Put(1, MakeDummyHandle(static_cast<double>(i)));
  }
  stop.store(true);
  getter.join();
  EXPECT_EQ(nulls.load(), 0) << "replacement must never expose a miss";
  EXPECT_EQ(cache.size(), 1u) << "one key, one slot";
  // LRU accounting survived the refresh storm: after 2 and 3 arrive, the
  // oldest key (1) is the one evicted — it held exactly one LRU position.
  cache.Put(2, MakeDummyHandle(7.0));
  cache.Put(3, MakeDummyHandle(8.0));
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
}

TEST(ReleaseCacheTest, ConcurrentGetPutClearStress) {
  // N threads hammer a small cache with mixed Get/Put/Clear. Run under
  // TSan (build-tsan) this is the data-race detector for the LRU
  // accounting; under any build it checks the invariants that survive
  // arbitrary interleavings: size <= capacity, hits + misses == gets, and
  // every returned handle is non-null with its full answer vector intact.
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 3000;
  constexpr uint64_t kKeySpace = 12;
  ReleaseCache cache(4);
  auto handle = MakeDummyHandle(5.0);  // shared: contents must stay valid
  std::atomic<int64_t> gets{0};
  std::atomic<int> corrupt{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Deterministic per-thread op mix (no shared RNG).
      uint64_t state = 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(t + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const uint64_t key = (state >> 33) % kKeySpace;
        const uint64_t op = (state >> 61) & 7;
        if (op < 4) {
          if (auto h = cache.Get(key)) {
            if (h->NumQueries() <= 0) corrupt.fetch_add(1);
          }
          gets.fetch_add(1);
        } else if (op < 7) {
          cache.Put(key, handle);
        } else {
          cache.Clear();
        }
        if (cache.size() > cache.capacity()) corrupt.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(corrupt.load(), 0);
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_EQ(cache.hits() + cache.misses(), gets.load());
  // The cache still works after the storm.
  cache.Clear();
  cache.Put(999, handle);
  EXPECT_EQ(cache.Get(999), handle);
}

}  // namespace
}  // namespace dpjoin
