#include "engine/serving.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "query/evaluation.h"
#include "query/workloads.h"
#include "testing/brute_force.h"

namespace dpjoin {
namespace {

struct SyntheticFixture {
  std::shared_ptr<const ReleasedDataset> dataset;
  QueryFamily family;
  Plan plan;
};

SyntheticFixture MakeSyntheticFixture(uint64_t seed = 5) {
  Rng rng(seed);
  const auto query =
      std::make_shared<JoinQuery>(MakeTwoTableQuery(4, 5, 4));
  const Instance instance = testing::RandomInstance(*query, 20, rng);
  QueryFamily family = MakeWorkload(*query, WorkloadKind::kRandomSign, 3, rng);
  Plan plan;
  plan.mechanism = MechanismKind::kPmw;
  plan.rationale = "test fixture";
  // Any tensor is a valid "release" for serving-layer purposes.
  auto dataset =
      std::make_shared<const ReleasedDataset>(query, JoinTensor(instance));
  return SyntheticFixture{std::move(dataset), std::move(family),
                          std::move(plan)};
}

TEST(ServingHandleTest, BatchAnswersMatchDirectEvaluation) {
  SyntheticFixture fx = MakeSyntheticFixture();
  const ServingHandle handle(fx.dataset, fx.family, fx.plan);
  const std::vector<double> all = EvaluateAllOnTensor(fx.family,
                                                      fx.dataset->tensor());
  std::vector<int64_t> batch;
  for (int64_t q = 0; q < handle.NumQueries(); ++q) batch.push_back(q);
  batch.push_back(0);  // duplicates allowed
  auto answers = handle.AnswerBatch(batch);
  ASSERT_TRUE(answers.ok()) << answers.status();
  ASSERT_EQ(answers->size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_NEAR((*answers)[i], all[static_cast<size_t>(batch[i])], 1e-9)
        << "batch slot " << i;
  }
  // AnswerAll (contraction path) agrees too.
  const std::vector<double> served_all = handle.AnswerAll();
  ASSERT_EQ(served_all.size(), all.size());
  for (size_t q = 0; q < all.size(); ++q) {
    EXPECT_EQ(served_all[q], all[q]);
  }
}

TEST(ServingHandleTest, BatchBitIdenticalAcrossThreadCounts) {
  SyntheticFixture fx = MakeSyntheticFixture(6);
  const ServingHandle handle(fx.dataset, fx.family, fx.plan);
  Rng rng(7);
  std::vector<int64_t> batch;
  for (int i = 0; i < 200; ++i) {
    batch.push_back(rng.UniformInt(0, handle.NumQueries() - 1));
  }
  const std::vector<double> baseline = *handle.AnswerBatch(batch, 1);
  for (int threads : {2, 8}) {
    const auto answers = handle.AnswerBatch(batch, threads);
    ASSERT_TRUE(answers.ok());
    ASSERT_EQ(answers->size(), baseline.size());
    for (size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ((*answers)[i], baseline[i])
          << "slot " << i << ", threads = " << threads;
    }
  }
}

TEST(ServingHandleTest, RejectsOutOfRangeQueryIds) {
  SyntheticFixture fx = MakeSyntheticFixture();
  const ServingHandle handle(fx.dataset, fx.family, fx.plan);
  EXPECT_TRUE(
      handle.AnswerBatch({handle.NumQueries()}).status().IsOutOfRange());
  EXPECT_TRUE(handle.AnswerBatch({-1}).status().IsOutOfRange());
  auto empty = handle.AnswerBatch({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(ServingHandleTest, DirectAnswerHandleServesLookups) {
  SyntheticFixture fx = MakeSyntheticFixture(8);
  std::vector<double> answers(
      static_cast<size_t>(fx.family.TotalCount()));
  for (size_t q = 0; q < answers.size(); ++q) {
    answers[q] = static_cast<double>(q) * 1.5;
  }
  Plan plan;
  plan.mechanism = MechanismKind::kLaplace;
  const ServingHandle handle(answers, fx.family, plan);
  EXPECT_EQ(handle.dataset(), nullptr);
  auto batch = handle.AnswerBatch({3, 0, 3});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(*batch, (std::vector<double>{4.5, 0.0, 4.5}));
  EXPECT_EQ(handle.AnswerAll(), answers);
}

std::shared_ptr<const ServingHandle> MakeDummyHandle(double tag) {
  SyntheticFixture fx = MakeSyntheticFixture(9);
  std::vector<double> answers(static_cast<size_t>(fx.family.TotalCount()),
                              tag);
  Plan plan;
  plan.mechanism = MechanismKind::kLaplace;
  return std::make_shared<const ServingHandle>(std::move(answers), fx.family,
                                               plan);
}

TEST(ReleaseCacheTest, LruEvictionAndRecency) {
  ReleaseCache cache(2);
  cache.Put(1, MakeDummyHandle(1.0));
  cache.Put(2, MakeDummyHandle(2.0));
  EXPECT_EQ(cache.size(), 2u);

  // Touch 1 so 2 becomes least-recently-used, then insert 3: 2 is evicted.
  ASSERT_NE(cache.Get(1), nullptr);
  cache.Put(3, MakeDummyHandle(3.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);

  EXPECT_EQ(cache.hits(), 3);
  EXPECT_EQ(cache.misses(), 1);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get(1), nullptr);
}

TEST(ReleaseCacheTest, PutRefreshesExistingKey) {
  ReleaseCache cache(2);
  auto first = MakeDummyHandle(1.0);
  auto second = MakeDummyHandle(2.0);
  cache.Put(1, first);
  cache.Put(2, MakeDummyHandle(9.0));
  cache.Put(1, second);  // refresh key 1 → most recent
  cache.Put(3, MakeDummyHandle(3.0));  // evicts key 2
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_EQ(cache.Get(1), second);
}

}  // namespace
}  // namespace dpjoin
