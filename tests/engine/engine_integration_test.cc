// End-to-end engine acceptance: one spec per mechanism (plus `auto`), each
// driven through ReleaseEngine with
//   * ledger totals exactly matching the mechanism's own accountant,
//   * refusal of specs exceeding the remaining global budget,
//   * cache hits serving repeated specs without re-spending,
//   * bit-identical releases and served answers for threads in {1, 2, 8}.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "query/evaluation.h"
#include "relational/generators.h"
#include "relational/io.h"
#include "testing/brute_force.h"

namespace dpjoin {
namespace {

// Small schemas so every mechanism (PMW rounds included) runs in
// milliseconds.
ReleaseSpec TwoTableSpec(MechanismKind mechanism) {
  ReleaseSpec spec;
  spec.name = std::string("two_table_") + MechanismName(mechanism);
  spec.attributes = {{"A", 4}, {"B", 5}, {"C", 4}};
  spec.relation_names = {"R1", "R2"};
  spec.relation_attrs = {{"A", "B"}, {"B", "C"}};
  spec.epsilon = 1.0;
  spec.delta = 1e-5;
  spec.mechanism = mechanism;
  spec.workload = WorkloadFamilyKind::kRandomSign;
  spec.workload_per_table = 2;
  spec.workload_seed = 21;
  spec.pmw_max_rounds = 4;
  return spec;
}

ReleaseSpec StarSpec(MechanismKind mechanism) {
  ReleaseSpec spec;
  spec.name = std::string("star_") + MechanismName(mechanism);
  spec.attributes = {{"H", 4}, {"S1", 3}, {"S2", 3}, {"S3", 3}};
  spec.relation_names = {"R1", "R2", "R3"};
  spec.relation_attrs = {{"H", "S1"}, {"H", "S2"}, {"H", "S3"}};
  spec.epsilon = 1.0;
  spec.delta = 1e-5;
  spec.mechanism = mechanism;
  spec.workload = WorkloadFamilyKind::kRandomSign;
  spec.workload_per_table = 2;
  spec.workload_seed = 23;
  spec.pmw_max_rounds = 4;
  return spec;
}

ReleaseSpec PathSpec(MechanismKind mechanism) {
  ReleaseSpec spec;
  spec.name = std::string("path_") + MechanismName(mechanism);
  spec.attributes = {{"X0", 3}, {"X1", 3}, {"X2", 3}, {"X3", 3}};
  spec.relation_names = {"R1", "R2", "R3"};
  spec.relation_attrs = {{"X0", "X1"}, {"X1", "X2"}, {"X2", "X3"}};
  spec.epsilon = 1.0;
  spec.delta = 1e-5;
  spec.mechanism = mechanism;
  spec.workload = WorkloadFamilyKind::kRandomSign;
  spec.workload_per_table = 2;
  spec.workload_seed = 25;
  spec.pmw_max_rounds = 4;
  return spec;
}

Instance InstanceFor(const ReleaseSpec& spec, uint64_t seed) {
  Rng rng(seed);
  return testing::RandomInstance(*spec.BuildQuery(), 15, rng);
}

// Served answers of a fresh engine run of `spec` at `threads`.
std::vector<double> ReleaseAndServe(const ReleaseSpec& base, int threads,
                                    uint64_t rng_seed) {
  ReleaseSpec spec = base;
  spec.num_threads = threads;
  ReleaseEngine engine(PrivacyParams(8.0, 1e-2));
  const Instance instance = InstanceFor(base, 101);
  Rng rng(rng_seed);
  auto release = engine.Run(spec, instance, rng);
  DPJOIN_CHECK(release.ok(), release.status().ToString());
  // Serve with the same thread count the release ran at.
  std::vector<int64_t> batch;
  for (int64_t q = 0; q < release->handle->NumQueries(); ++q) {
    batch.push_back(q);
  }
  auto answers = release->handle->AnswerBatch(batch, threads);
  DPJOIN_CHECK(answers.ok(), answers.status().ToString());
  return std::move(answers).value();
}

class EngineMechanismTest
    : public ::testing::TestWithParam<MechanismKind> {};

TEST_P(EngineMechanismTest, LedgerMatchesMechanismAccountant) {
  const MechanismKind mechanism = GetParam();
  ReleaseSpec spec = mechanism == MechanismKind::kHierarchical
                         ? StarSpec(mechanism)
                         : TwoTableSpec(mechanism);
  ReleaseEngine engine(PrivacyParams(8.0, 1e-2));
  const Instance instance = InstanceFor(spec, 11);
  Rng rng(31);
  auto release = engine.Run(spec, instance, rng);
  ASSERT_TRUE(release.ok()) << release.status();
  EXPECT_EQ(release->plan.mechanism, mechanism);
  EXPECT_FALSE(release->from_cache);

  // The ledger's committed total is EXACTLY the mechanism's own accounting.
  const PrivacyParams mech_total = release->accountant.Total();
  const PrivacyParams ledger_total = engine.ledger().Total();
  EXPECT_EQ(ledger_total.epsilon, mech_total.epsilon);
  EXPECT_EQ(ledger_total.delta, mech_total.delta);
  const auto entries = engine.ledger().Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].label, spec.name);
  ASSERT_EQ(entries[0].breakdown.size(),
            release->accountant.entries().size());
  for (size_t i = 0; i < entries[0].breakdown.size(); ++i) {
    EXPECT_EQ(entries[0].breakdown[i].label,
              release->accountant.entries()[i].label);
    EXPECT_EQ(entries[0].breakdown[i].params.epsilon,
              release->accountant.entries()[i].params.epsilon);
  }
}

TEST_P(EngineMechanismTest, BitIdenticalAcrossThreadCounts) {
  const MechanismKind mechanism = GetParam();
  const ReleaseSpec spec = mechanism == MechanismKind::kHierarchical
                               ? StarSpec(mechanism)
                               : TwoTableSpec(mechanism);
  const std::vector<double> baseline = ReleaseAndServe(spec, 1, 77);
  for (int threads : {2, 8}) {
    const std::vector<double> answers = ReleaseAndServe(spec, threads, 77);
    ASSERT_EQ(answers.size(), baseline.size());
    for (size_t q = 0; q < baseline.size(); ++q) {
      EXPECT_EQ(answers[q], baseline[q])
          << "query " << q << ", threads = " << threads << ", mechanism = "
          << MechanismName(mechanism);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, EngineMechanismTest,
    ::testing::Values(MechanismKind::kLaplace, MechanismKind::kTwoTable,
                      MechanismKind::kHierarchical, MechanismKind::kPmw),
    [](const ::testing::TestParamInfo<MechanismKind>& info) {
      return std::string(MechanismName(info.param));
    });

TEST(EngineIntegrationTest, PmwSpecOnPathUsesMultiTable) {
  // The pmw mechanism on a 3-relation non-hierarchical join routes through
  // MultiTable; the accountant shows the RS-bound spend.
  const ReleaseSpec spec = PathSpec(MechanismKind::kPmw);
  ReleaseEngine engine(PrivacyParams(8.0, 1e-2));
  const Instance instance = InstanceFor(spec, 13);
  Rng rng(37);
  auto release = engine.Run(spec, instance, rng);
  ASSERT_TRUE(release.ok()) << release.status();
  ASSERT_FALSE(release->accountant.entries().empty());
  EXPECT_EQ(release->accountant.entries()[0].label, "multi-table/rs-bound");
}

TEST(EngineIntegrationTest, AutoResolvesWithRationale) {
  ReleaseEngine engine(PrivacyParams(8.0, 1e-2));
  // auto on a star → hierarchical, with a non-empty explanation.
  {
    const ReleaseSpec spec = StarSpec(MechanismKind::kAuto);
    const Instance instance = InstanceFor(spec, 17);
    Rng rng(41);
    auto release = engine.Run(spec, instance, rng);
    ASSERT_TRUE(release.ok()) << release.status();
    EXPECT_EQ(release->plan.mechanism, MechanismKind::kHierarchical);
    EXPECT_NE(release->plan.rationale.find("auto"), std::string::npos);
    EXPECT_GT(release->plan.predicted_error, 0.0);
  }
  // auto on a two-table join → two_table (workload sized past the
  // |Q| <= log2|D| laplace crossover).
  {
    ReleaseSpec spec = TwoTableSpec(MechanismKind::kAuto);
    spec.workload_per_table = 3;  // |Q| = 16 > log2(400) = 9
    const Instance instance = InstanceFor(spec, 19);
    Rng rng(43);
    auto release = engine.Run(spec, instance, rng);
    ASSERT_TRUE(release.ok()) << release.status();
    EXPECT_EQ(release->plan.mechanism, MechanismKind::kTwoTable);
  }
}

// 10 attributes of size 16 in one relation: |D| = 2^40 cells — the dense
// backing cannot even be allocated, so this spec used to fail planning.
ReleaseSpec HugeFactoredSpec(MechanismKind mechanism) {
  ReleaseSpec spec;
  spec.name = std::string("huge_factored_") + MechanismName(mechanism);
  for (int d = 0; d < 10; ++d) {
    spec.attributes.push_back({std::string(1, static_cast<char>('A' + d)),
                               16});
    spec.relation_attrs.resize(1);
    spec.relation_attrs[0].push_back(spec.attributes.back().name);
  }
  spec.relation_names = {"R1"};
  spec.epsilon = 1.0;
  spec.delta = 1e-5;
  spec.mechanism = mechanism;
  spec.workload = WorkloadFamilyKind::kMarginalAll;  // |Q| = 161
  spec.workload_seed = 27;
  spec.pmw_max_rounds = 6;
  return spec;
}

TEST(EngineIntegrationTest, FactoredReleaseServesBeyondTheDenseEnvelope) {
  const ReleaseSpec spec = HugeFactoredSpec(MechanismKind::kAuto);
  ReleaseEngine engine(PrivacyParams(8.0, 1e-2));
  const Instance instance = InstanceFor(spec, 29);
  Rng rng(47);
  auto release = engine.Run(spec, instance, rng);
  ASSERT_TRUE(release.ok()) << release.status();
  EXPECT_EQ(release->plan.mechanism, MechanismKind::kPmw);
  ASSERT_TRUE(release->plan.factored);
  EXPECT_EQ(release->plan.factor_groups.size(), 10u);

  const ServingHandle& handle = *release->handle;
  ASSERT_NE(handle.dataset(), nullptr);
  const FactoredTensor* tensor = handle.dataset()->factored();
  ASSERT_NE(tensor, nullptr);
  // Memory proportional to the SUM of factor sizes, not the 2^40 product.
  EXPECT_EQ(tensor->StorageCells(), 160);
  EXPECT_DOUBLE_EQ(tensor->DomainCells(), std::pow(2.0, 40.0));
  ASSERT_NE(handle.evaluator(), nullptr);
  EXPECT_TRUE(handle.evaluator()->factored());

  // The full workload serves through both surfaces, finitely, and the
  // all-ones query returns the released mass.
  const std::vector<double> all = handle.AnswerAll();
  ASSERT_EQ(static_cast<int64_t>(all.size()), handle.NumQueries());
  for (const double a : all) ASSERT_TRUE(std::isfinite(a));
  EXPECT_NEAR(all[0], handle.dataset()->TotalMass(),
              1e-6 * (1.0 + std::abs(all[0])));
  std::vector<int64_t> batch;
  for (int64_t q = 0; q < handle.NumQueries(); ++q) batch.push_back(q);
  auto batched = handle.AnswerBatch(batch);
  ASSERT_TRUE(batched.ok()) << batched.status();
  for (int64_t q = 0; q < handle.NumQueries(); ++q) {
    EXPECT_NEAR((*batched)[static_cast<size_t>(q)],
                all[static_cast<size_t>(q)],
                1e-9 * (1.0 + std::abs(all[static_cast<size_t>(q)])))
        << "query " << q;
  }
}

TEST(EngineIntegrationTest, FactoredReleaseIsBitIdenticalAcrossThreads) {
  const ReleaseSpec spec = HugeFactoredSpec(MechanismKind::kPmw);
  const std::vector<double> base = ReleaseAndServe(spec, 1, 53);
  for (const int threads : {2, 8}) {
    const std::vector<double> other = ReleaseAndServe(spec, threads, 53);
    ASSERT_EQ(other.size(), base.size());
    for (size_t q = 0; q < base.size(); ++q) {
      ASSERT_EQ(other[q], base[q]) << "threads=" << threads << " query " << q;
    }
  }
}

TEST(EngineIntegrationTest, RefusesSpecsExceedingTheGlobalBudget) {
  ReleaseEngine engine(PrivacyParams(1.5, 1e-3));
  const ReleaseSpec first = TwoTableSpec(MechanismKind::kPmw);  // ε = 1.0
  const Instance instance = InstanceFor(first, 23);
  Rng rng(47);
  ASSERT_TRUE(engine.Run(first, instance, rng).ok());

  // Remaining ε = 0.5 < 1.0: a second distinct spec is refused with a
  // descriptive error, and nothing is committed for it.
  ReleaseSpec second = TwoTableSpec(MechanismKind::kPmw);
  second.name = "second";
  second.workload_seed = 99;  // distinct spec → cache cannot serve it
  auto refused = engine.Run(second, instance, rng);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsFailedPrecondition());
  EXPECT_NE(refused.status().message().find("second"), std::string::npos);
  EXPECT_NE(refused.status().message().find("remains"), std::string::npos);
  EXPECT_EQ(engine.ledger().num_committed(), 1);
  EXPECT_EQ(engine.ledger().num_outstanding(), 0);

  // A spec that fits the remainder still runs.
  ReleaseSpec third = TwoTableSpec(MechanismKind::kLaplace);
  third.name = "third";
  third.epsilon = 0.5;
  EXPECT_TRUE(engine.Run(third, instance, rng).ok());
}

TEST(EngineIntegrationTest, CacheServesRepeatedSpecsWithoutSpending) {
  ReleaseEngine engine(PrivacyParams(1.5, 1e-3));
  const ReleaseSpec spec = TwoTableSpec(MechanismKind::kPmw);  // ε = 1.0
  const Instance instance = InstanceFor(spec, 29);
  Rng rng(53);
  auto first = engine.Run(spec, instance, rng);
  ASSERT_TRUE(first.ok()) << first.status();
  const double spent = engine.ledger().SpentEpsilon();

  // Identical spec: cache hit, same handle, no new spend — even though a
  // fresh release would NOT fit the remaining budget.
  Rng rng2(54);
  auto second = engine.Run(spec, instance, rng2);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->from_cache);
  EXPECT_EQ(second->handle.get(), first->handle.get());
  EXPECT_EQ(engine.ledger().SpentEpsilon(), spent);
  EXPECT_EQ(engine.ledger().num_committed(), 1);
  EXPECT_TRUE(second->accountant.entries().empty());
}

TEST(EngineIntegrationTest, SameSpecDifferentDataIsNotAStaleCacheHit) {
  ReleaseEngine engine(PrivacyParams(4.0, 1e-3));
  const ReleaseSpec spec = TwoTableSpec(MechanismKind::kLaplace);
  const Instance first_data = InstanceFor(spec, 63);
  const Instance second_data = InstanceFor(spec, 64);  // different tuples
  Rng rng(67);
  auto first = engine.Run(spec, first_data, rng);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = engine.Run(spec, second_data, rng);
  ASSERT_TRUE(second.ok()) << second.status();
  // The instance fingerprint is part of the cache key: new data means a new
  // release (and a new spend), never the previous data's answers.
  EXPECT_FALSE(second->from_cache);
  EXPECT_EQ(engine.ledger().num_committed(), 2);
  // Same data again → genuine hit.
  auto third = engine.Run(spec, first_data, rng);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->from_cache);
  EXPECT_EQ(third->handle.get(), first->handle.get());
}

TEST(EngineIntegrationTest, ConcurrentIdenticalSpecsSpendOnce) {
  // 4 threads race the same spec+instance; in-flight serialization must let
  // exactly one run the mechanism and hand everyone else the cached handle.
  ReleaseEngine engine(PrivacyParams(1.5, 1e-3));  // room for ONE ε=1 release
  const ReleaseSpec spec = TwoTableSpec(MechanismKind::kLaplace);
  const Instance instance = InstanceFor(spec, 71);
  std::atomic<int> fresh{0}, cached{0}, failed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(200 + static_cast<uint64_t>(t));
      auto release = engine.Run(spec, instance, rng);
      if (!release.ok()) {
        failed.fetch_add(1);
      } else if (release->from_cache) {
        cached.fetch_add(1);
      } else {
        fresh.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(fresh.load(), 1);
  EXPECT_EQ(cached.load(), 3);
  EXPECT_EQ(engine.ledger().num_committed(), 1);
  EXPECT_DOUBLE_EQ(engine.ledger().SpentEpsilon(), 1.0);
}

TEST(EngineIntegrationTest, ThreadCountOnlyRespecIsACacheHit) {
  ReleaseEngine engine(PrivacyParams(1.5, 1e-3));
  ReleaseSpec spec = TwoTableSpec(MechanismKind::kPmw);
  spec.num_threads = 1;
  const Instance instance = InstanceFor(spec, 73);
  Rng rng(79);
  ASSERT_TRUE(engine.Run(spec, instance, rng).ok());
  spec.num_threads = 8;  // same release, different parallelism
  auto again = engine.Run(spec, instance, rng);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE(again->from_cache);
  EXPECT_EQ(engine.ledger().num_committed(), 1);
}

TEST(EngineIntegrationTest, RejectsMismatchedInstanceSchema) {
  ReleaseEngine engine(PrivacyParams(4.0, 1e-3));
  const ReleaseSpec spec = TwoTableSpec(MechanismKind::kPmw);
  const ReleaseSpec other = StarSpec(MechanismKind::kPmw);
  const Instance star_instance = InstanceFor(other, 31);
  Rng rng(59);
  auto release = engine.Run(spec, star_instance, rng);
  EXPECT_TRUE(release.status().IsInvalidArgument());

  // Same hypergraph, different DOMAIN SIZES: also a mismatch — releasing
  // over a different domain than declared would change the released object.
  ReleaseSpec widened = spec;
  widened.attributes[2].domain_size = 9;
  ASSERT_TRUE(
      engine.catalog().Register("narrow", InstanceFor(spec, 33)).ok());
  ReleaseRequest request;
  request.spec = widened;
  request.dataset = "narrow";
  auto mismatch = engine.Submit(request);
  EXPECT_TRUE(mismatch.status().IsInvalidArgument()) << mismatch.status();
  EXPECT_NE(mismatch.status().message().find("does not match"),
            std::string::npos);
}

TEST(EngineIntegrationTest, RunFromFileLoadsTheInstanceCsv) {
  // Round-trip: write an instance CSV, point the spec at it, run.
  const ReleaseSpec base = TwoTableSpec(MechanismKind::kLaplace);
  const Instance instance = InstanceFor(base, 37);
  std::stringstream csv;
  ASSERT_TRUE(WriteInstanceCsv(instance, csv).ok());
  const std::string path = ::testing::TempDir() + "/engine_instance.csv";
  {
    std::ofstream file(path);
    file << csv.str();
  }
  ReleaseSpec spec = base;
  spec.dataset = "csv:" + path;  // absolute → base_dir ignored
  ReleaseEngine engine(PrivacyParams(4.0, 1e-3));
  Rng rng(61);
  auto release = engine.RunFromFile(spec, "/nonexistent", rng);
  ASSERT_TRUE(release.ok()) << release.status();
  EXPECT_EQ(release->handle->NumQueries(), 9);

  // A corrupt file surfaces a clean Status naming the path (a FRESH engine:
  // the first one's catalog intentionally keeps serving the data it already
  // registered).
  {
    std::ofstream file(path);
    file << "not an instance\n";
  }
  ReleaseEngine engine2(PrivacyParams(4.0, 1e-3));
  auto bad = engine2.RunFromFile(spec, "", rng);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find(path), std::string::npos);

  auto missing_path = spec;
  missing_path.dataset = "";
  EXPECT_TRUE(
      engine2.RunFromFile(missing_path, "", rng).status().IsInvalidArgument());
}

// The tentpole guarantee of the catalog API: a repeated release of the same
// spec + dataset is a cache hit with ZERO additional ledger spend and ZERO
// re-fingerprinting.
TEST(EngineIntegrationTest, SubmitByNameNeverRefingerprints) {
  ReleaseEngine engine(PrivacyParams(1.5, 1e-3));
  const ReleaseSpec spec = TwoTableSpec(MechanismKind::kPmw);  // ε = 1.0
  Instance instance = InstanceFor(spec, 83);

  const int64_t before_register = InstanceFingerprintCount();
  auto dataset = engine.catalog().Register("traffic", std::move(instance));
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(InstanceFingerprintCount() - before_register, 1)
      << "registration pays the fingerprint exactly once";

  ReleaseRequest request;
  request.spec = spec;
  request.dataset = "traffic";
  request.seed = 5;
  auto first = engine.Submit(request);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->from_cache);
  EXPECT_EQ(first->dataset_name, "traffic");
  EXPECT_EQ(first->dataset_fingerprint, (*dataset)->fingerprint());
  EXPECT_EQ(first->ledger.num_committed, 1);
  const double spent = first->ledger.spent_epsilon;
  EXPECT_DOUBLE_EQ(spent, 1.0);

  // 100 re-submissions: all cache hits, no spend, no fingerprinting — the
  // submission hot path is O(spec hash), not O(n log n).
  const int64_t before_submissions = InstanceFingerprintCount();
  for (int i = 0; i < 100; ++i) {
    request.seed = static_cast<uint64_t>(1000 + i);  // seed is irrelevant
    auto again = engine.Submit(request);
    ASSERT_TRUE(again.ok()) << again.status();
    EXPECT_TRUE(again->from_cache);
    EXPECT_EQ(again->release_id, first->release_id);
    EXPECT_EQ(again->handle.get(), first->handle.get());
    EXPECT_DOUBLE_EQ(again->ledger.spent_epsilon, spent);
    EXPECT_TRUE(again->accountant.entries().empty());
  }
  EXPECT_EQ(InstanceFingerprintCount(), before_submissions);
  EXPECT_EQ(engine.ledger().num_committed(), 1);

  // The release id addresses the live handle.
  auto found = engine.FindRelease(first->release_id);
  ASSERT_TRUE(found.ok()) << found.status();
  EXPECT_EQ(found->get(), first->handle.get());
  EXPECT_TRUE(engine.FindRelease(first->release_id ^ 1).status().IsNotFound());
}

TEST(EngineIntegrationTest, SubmitResolvesGeneratedSourcesOnce) {
  ReleaseEngine engine(PrivacyParams(8.0, 1e-2));
  ReleaseSpec spec = TwoTableSpec(MechanismKind::kLaplace);
  spec.dataset = "generated:zipf(tuples=60,s=1.0,seed=9)";

  ReleaseRequest request;
  request.spec = spec;  // dataset comes from the spec
  request.seed = 2;
  const int64_t before = InstanceFingerprintCount();
  auto first = engine.Submit(request);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(InstanceFingerprintCount() - before, 1);
  EXPECT_EQ(engine.catalog().size(), 1u);

  // Same source string → the auto-registered dataset is reused: no second
  // materialization, no second fingerprint, and the release is a cache hit.
  auto again = engine.Submit(request);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE(again->from_cache);
  EXPECT_EQ(InstanceFingerprintCount() - before, 1);
  EXPECT_EQ(engine.catalog().size(), 1u);

  // A different generation seed is DIFFERENT data: new dataset, new spend.
  ReleaseRequest other = request;
  other.spec.dataset = "generated:zipf(tuples=60,s=1.0,seed=10)";
  auto third = engine.Submit(other);
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_FALSE(third->from_cache);
  EXPECT_NE(third->release_id, first->release_id);
  EXPECT_EQ(engine.catalog().size(), 2u);
}

TEST(EngineIntegrationTest, SubmitWithoutADatasetIsRejected) {
  ReleaseEngine engine(PrivacyParams(8.0, 1e-2));
  ReleaseRequest request;
  request.spec = TwoTableSpec(MechanismKind::kLaplace);  // spec.dataset empty
  auto response = engine.Submit(request);
  EXPECT_TRUE(response.status().IsInvalidArgument()) << response.status();

  request.dataset = "never_registered";
  EXPECT_TRUE(engine.Submit(request).status().IsNotFound());
}

TEST(EngineIntegrationTest, RunAndSubmitShareTheCacheForIdenticalData) {
  // The legacy shim and the catalog path agree on release identity: the
  // same spec over byte-identical data is ONE release however submitted.
  ReleaseEngine engine(PrivacyParams(1.5, 1e-3));
  const ReleaseSpec spec = TwoTableSpec(MechanismKind::kLaplace);
  const Instance instance = InstanceFor(spec, 89);
  Rng rng(97);
  auto legacy = engine.Run(spec, instance, rng);
  ASSERT_TRUE(legacy.ok()) << legacy.status();

  ASSERT_TRUE(
      engine.catalog().Register("same_data", InstanceFor(spec, 89)).ok());
  ReleaseRequest request;
  request.spec = spec;
  request.dataset = "same_data";
  auto response = engine.Submit(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->from_cache);
  EXPECT_EQ(response->handle.get(), legacy->handle.get());
  EXPECT_EQ(engine.ledger().num_committed(), 1);
}

}  // namespace
}  // namespace dpjoin
