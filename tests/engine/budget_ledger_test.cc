#include "engine/budget_ledger.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace dpjoin {
namespace {

PrivacyAccountant AccountantSpending(double epsilon, double delta) {
  PrivacyAccountant accountant;
  accountant.SpendSequential("half-a", PrivacyParams(epsilon / 2, delta / 2));
  accountant.SpendSequential("half-b", PrivacyParams(epsilon / 2, delta / 2));
  return accountant;
}

TEST(BudgetLedgerTest, CommitRecordsTheAccountantTotals) {
  BudgetLedger ledger(PrivacyParams(4.0, 1e-3));
  auto ticket = ledger.Reserve("r1", PrivacyParams(1.0, 1e-5));
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  const PrivacyAccountant accountant = AccountantSpending(1.0, 1e-5);
  ledger.Commit(*ticket, accountant);

  EXPECT_EQ(ledger.num_committed(), 1);
  EXPECT_EQ(ledger.num_outstanding(), 0);
  const PrivacyParams total = ledger.Total();
  const PrivacyParams expected = accountant.Total();
  EXPECT_DOUBLE_EQ(total.epsilon, expected.epsilon);
  EXPECT_DOUBLE_EQ(total.delta, expected.delta);

  const auto entries = ledger.Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].label, "r1");
  ASSERT_EQ(entries[0].breakdown.size(), 2u);
  EXPECT_EQ(entries[0].breakdown[0].label, "half-a");
}

TEST(BudgetLedgerTest, CommittedSpendMayExceedTheReservation) {
  // Hierarchical uniformize reports its measured group-privacy factor; the
  // ledger records the truth even when it overshoots the nominal request.
  BudgetLedger ledger(PrivacyParams(10.0, 1e-2));
  auto ticket = ledger.Reserve("hier", PrivacyParams(1.0, 1e-5));
  ASSERT_TRUE(ticket.ok());
  ledger.Commit(*ticket, AccountantSpending(3.0, 3e-5));
  EXPECT_DOUBLE_EQ(ledger.SpentEpsilon(), 3.0);
  EXPECT_DOUBLE_EQ(ledger.RemainingEpsilon(), 7.0);
}

TEST(BudgetLedgerTest, RefusesOverBudgetReservations) {
  BudgetLedger ledger(PrivacyParams(1.0, 1e-4));
  auto first = ledger.Reserve("fits", PrivacyParams(0.8, 1e-5));
  ASSERT_TRUE(first.ok());
  // Remaining ε is 0.2; a 0.5 request must be refused with a descriptive
  // message even before the first release commits.
  auto refused = ledger.Reserve("greedy", PrivacyParams(0.5, 1e-5));
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsFailedPrecondition());
  EXPECT_NE(refused.status().message().find("greedy"), std::string::npos);
  EXPECT_NE(refused.status().message().find("remains"), std::string::npos);

  // δ overshoot is refused independently of ε.
  auto delta_refused = ledger.Reserve("delta", PrivacyParams(0.1, 1e-3));
  EXPECT_TRUE(delta_refused.status().IsFailedPrecondition());

  ledger.Commit(*first, AccountantSpending(0.8, 1e-5));
  auto still_refused = ledger.Reserve("greedy2", PrivacyParams(0.5, 1e-5));
  EXPECT_TRUE(still_refused.status().IsFailedPrecondition());
  auto fits2 = ledger.Reserve("fits2", PrivacyParams(0.2, 1e-5));
  EXPECT_TRUE(fits2.ok());
}

TEST(BudgetLedgerTest, AbandonReturnsTheBudget) {
  BudgetLedger ledger(PrivacyParams(1.0, 1e-4));
  auto ticket = ledger.Reserve("failing", PrivacyParams(0.9, 1e-5));
  ASSERT_TRUE(ticket.ok());
  EXPECT_DOUBLE_EQ(ledger.RemainingEpsilon(), 1.0 - 0.9);
  ledger.Abandon(*ticket);
  EXPECT_DOUBLE_EQ(ledger.RemainingEpsilon(), 1.0);
  EXPECT_EQ(ledger.num_committed(), 0);
  EXPECT_DOUBLE_EQ(ledger.SpentEpsilon(), 0.0);
}

TEST(BudgetLedgerTest, ConcurrentReservesNeverOversubscribe) {
  // 8 threads race to reserve (0.1, 1e-6) slices of a (1.0, 1e-4) cap; at
  // most 10 can ever succeed, regardless of interleaving.
  BudgetLedger ledger(PrivacyParams(1.0, 1e-4));
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&ledger, &successes, t] {
      for (int i = 0; i < 4; ++i) {
        auto ticket = ledger.Reserve("t" + std::to_string(t),
                                     PrivacyParams(0.1, 1e-6));
        if (ticket.ok()) {
          PrivacyAccountant accountant;
          accountant.SpendSequential("spend", PrivacyParams(0.1, 1e-6));
          ledger.Commit(*ticket, accountant);
          successes.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(successes.load(), 10);
  EXPECT_GE(successes.load(), 1);
  EXPECT_LE(ledger.SpentEpsilon(), 1.0 + 1e-9);
  EXPECT_EQ(ledger.num_outstanding(), 0);
}

TEST(BudgetLedgerTest, SerializesEntriesAsJson) {
  BudgetLedger ledger(PrivacyParams(2.0, 1e-4));
  auto ticket = ledger.Reserve("release \"one\"", PrivacyParams(1.0, 1e-5));
  ASSERT_TRUE(ticket.ok());
  ledger.Commit(*ticket, AccountantSpending(1.0, 1e-5));
  const std::string json = ledger.SerializeJson();
  EXPECT_NE(json.find("\"cap\""), std::string::npos);
  EXPECT_NE(json.find("\"entries\""), std::string::npos);
  EXPECT_NE(json.find("release \\\"one\\\""), std::string::npos);
  EXPECT_NE(json.find("\"breakdown\""), std::string::npos);
  EXPECT_NE(json.find("\"remaining\""), std::string::npos);
  // The human-readable form carries the same facts.
  const std::string text = ledger.ToString();
  EXPECT_NE(text.find("budget cap"), std::string::npos);
  EXPECT_NE(text.find("remaining"), std::string::npos);
}

TEST(BudgetLedgerTest, SaveLoadRoundTripsAcrossARestart) {
  const std::string path = ::testing::TempDir() + "/ledger_roundtrip.json";
  {
    BudgetLedger ledger(PrivacyParams(4.0, 1e-3));
    auto t1 = ledger.Reserve("release_one", PrivacyParams(1.0, 1e-5));
    ASSERT_TRUE(t1.ok());
    ledger.Commit(*t1, AccountantSpending(1.0, 1e-5));
    auto t2 = ledger.Reserve("release \"two\"", PrivacyParams(0.5, 1e-6));
    ASSERT_TRUE(t2.ok());
    ledger.Commit(*t2, AccountantSpending(0.5, 1e-6));
    ASSERT_TRUE(ledger.SaveJson(path).ok());
  }

  // The "restarted process": a fresh ledger with the same cap resumes with
  // the full recorded spend, entry labels, and breakdowns.
  BudgetLedger restarted(PrivacyParams(4.0, 1e-3));
  ASSERT_TRUE(restarted.LoadJson(path).ok());
  EXPECT_EQ(restarted.num_committed(), 2);
  EXPECT_DOUBLE_EQ(restarted.SpentEpsilon(), 1.5);
  EXPECT_DOUBLE_EQ(restarted.RemainingEpsilon(), 2.5);
  const auto entries = restarted.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].label, "release_one");
  EXPECT_EQ(entries[1].label, "release \"two\"");
  ASSERT_EQ(entries[0].breakdown.size(), 2u);
  EXPECT_EQ(entries[0].breakdown[0].label, "half-a");
  EXPECT_DOUBLE_EQ(entries[0].breakdown[0].params.epsilon, 0.5);

  // The restored spend keeps gating new reservations.
  EXPECT_TRUE(restarted.Reserve("big", PrivacyParams(3.0, 1e-5))
                  .status()
                  .IsFailedPrecondition());
  EXPECT_TRUE(restarted.Reserve("fits", PrivacyParams(2.0, 1e-5)).ok());
  std::remove(path.c_str());
}

TEST(BudgetLedgerTest, SaveLoadIsValueExactForNonRepresentableSpends) {
  // Budget spends are rarely clean decimals (advanced composition yields
  // values like ε/3); persistence must round-trip them bit-exact or a
  // restarted server would enforce a subtly different cap.
  const std::string path = ::testing::TempDir() + "/ledger_exact.json";
  const double eps = 1.0 / 3.0;
  const double del = 1e-5 / 3.0;
  {
    BudgetLedger ledger(PrivacyParams(4.0, 1e-3));
    auto ticket = ledger.Reserve("third", PrivacyParams(eps, del));
    ASSERT_TRUE(ticket.ok());
    PrivacyAccountant accountant;
    accountant.SpendSequential("spend", PrivacyParams(eps, del));
    ledger.Commit(*ticket, accountant);
    ASSERT_TRUE(ledger.SaveJson(path).ok());
  }
  BudgetLedger restarted(PrivacyParams(4.0, 1e-3));
  ASSERT_TRUE(restarted.LoadJson(path).ok());
  EXPECT_EQ(restarted.SpentEpsilon(), eps) << "bit-exact, not approximate";
  EXPECT_EQ(restarted.SpentDelta(), del);
  const auto entries = restarted.Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].breakdown[0].params.epsilon, eps);
  std::remove(path.c_str());
}

TEST(BudgetLedgerTest, LoadRefusesSpendExceedingTheConfiguredCap) {
  const std::string path = ::testing::TempDir() + "/ledger_overcap.json";
  {
    BudgetLedger ledger(PrivacyParams(4.0, 1e-3));
    auto ticket = ledger.Reserve("big", PrivacyParams(3.0, 1e-5));
    ASSERT_TRUE(ticket.ok());
    ledger.Commit(*ticket, AccountantSpending(3.0, 1e-5));
    ASSERT_TRUE(ledger.SaveJson(path).ok());
  }
  // A restart with a SMALLER cap must refuse the file: resurrecting more
  // spend than the process is configured for would break the guarantee.
  BudgetLedger small(PrivacyParams(2.0, 1e-3));
  const Status refused = small.LoadJson(path);
  EXPECT_TRUE(refused.IsFailedPrecondition()) << refused;
  EXPECT_NE(refused.message().find("exceeding the configured cap"),
            std::string::npos);
  EXPECT_EQ(small.num_committed(), 0);
  EXPECT_DOUBLE_EQ(small.SpentEpsilon(), 0.0);

  // An equal-or-larger cap loads the same file fine.
  BudgetLedger big(PrivacyParams(8.0, 1e-3));
  EXPECT_TRUE(big.LoadJson(path).ok());
  std::remove(path.c_str());
}

TEST(BudgetLedgerTest, LoadRejectsNonEmptyLedgersAndCorruptFiles) {
  const std::string path = ::testing::TempDir() + "/ledger_corrupt.json";
  {
    BudgetLedger ledger(PrivacyParams(4.0, 1e-3));
    auto ticket = ledger.Reserve("one", PrivacyParams(1.0, 1e-5));
    ASSERT_TRUE(ticket.ok());
    ledger.Commit(*ticket, AccountantSpending(1.0, 1e-5));
    ASSERT_TRUE(ledger.SaveJson(path).ok());

    // A ledger that already has state refuses to load over it.
    EXPECT_TRUE(ledger.LoadJson(path).IsFailedPrecondition());
  }
  {
    BudgetLedger ledger(PrivacyParams(4.0, 1e-3));
    auto outstanding = ledger.Reserve("pending", PrivacyParams(0.1, 1e-6));
    ASSERT_TRUE(outstanding.ok());
    EXPECT_TRUE(ledger.LoadJson(path).IsFailedPrecondition());
    ledger.Abandon(*outstanding);
  }

  BudgetLedger fresh(PrivacyParams(4.0, 1e-3));
  EXPECT_TRUE(fresh.LoadJson(path + ".missing").IsNotFound());
  for (const char* body :
       {"not json at all", "[1, 2, 3]", "{\"entries\": 7}",
        "{\"entries\": [{\"label\": 1}]}",
        "{\"entries\": [{\"label\": \"x\", \"total\": {\"epsilon\": -1, "
        "\"delta\": 0}}]}",
        "{\"entries\": [{\"label\": \"x\", \"total\": {\"epsilon\": 1}}]}"}) {
    std::ofstream file(path);
    file << body;
    file.close();
    EXPECT_FALSE(fresh.LoadJson(path).ok()) << body;
    EXPECT_EQ(fresh.num_committed(), 0) << "failed load must not mutate";
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dpjoin
