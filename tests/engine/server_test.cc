// Protocol tests for dpjoin_serve's request/response loop.
//
// The golden-session test replays tests/engine/golden/serve_session.txt —
// alternating `> request` / `< expected-response` lines — against a fresh
// server and compares byte-for-byte. Everything the protocol emits is
// deterministic (seeded noise, canonical JSON key order, %.17g numbers),
// so the goldens pin the whole wire format: command responses,
// malformed-input errors, and the over-budget refusal. After an
// intentional protocol change, regenerate with
//   DPJOIN_REGEN_GOLDEN=1 ./build/tests/server_test
// and review the diff like any other code change.

#include "engine/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"

#ifndef DPJOIN_TEST_SRCDIR
#error "build must define DPJOIN_TEST_SRCDIR (see tests/CMakeLists.txt)"
#endif

namespace dpjoin {
namespace {

constexpr char kGoldenPath[] =
    DPJOIN_TEST_SRCDIR "/engine/golden/serve_session.txt";

// Structural comparison with a relative tolerance on numbers: the golden
// bytes pin the protocol shape exactly, but noise values pass through
// libm (std::log/std::exp), whose last-ulp results differ across
// platforms — a one-ulp drift must not fail the protocol test.
bool JsonApproxEqual(const JsonValue& a, const JsonValue& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case JsonValue::Kind::kNull:
      return true;
    case JsonValue::Kind::kBool:
      return a.AsBool() == b.AsBool();
    case JsonValue::Kind::kNumber: {
      const double x = a.AsDouble(), y = b.AsDouble();
      if (x == y) return true;
      const double scale = std::max(std::abs(x), std::abs(y));
      return std::abs(x - y) <= 1e-9 * std::max(scale, 1.0);
    }
    case JsonValue::Kind::kString:
      return a.AsString() == b.AsString();
    case JsonValue::Kind::kArray: {
      if (a.items().size() != b.items().size()) return false;
      for (size_t i = 0; i < a.items().size(); ++i) {
        if (!JsonApproxEqual(a.items()[i], b.items()[i])) return false;
      }
      return true;
    }
    case JsonValue::Kind::kObject: {
      if (a.members().size() != b.members().size()) return false;
      for (size_t i = 0; i < a.members().size(); ++i) {
        if (a.members()[i].first != b.members()[i].first) return false;
        if (!JsonApproxEqual(a.members()[i].second, b.members()[i].second)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

// The spec text used throughout (embedded \n, as it travels on the wire).
std::string DemoSpec(const std::string& name, const std::string& epsilon,
                     const std::string& mechanism) {
  return "# dpjoin-release-spec v1\\nname = " + name +
         "\\nattribute = A:6\\nattribute = B:4\\nattribute = C:6\\n"
         "relation = R1:A,B\\nrelation = R2:B,C\\nepsilon = " + epsilon +
         "\\ndelta = 1e-5\\nmechanism = " + mechanism +
         "\\nworkload = prefix:3";
}

std::unique_ptr<ReleaseEngine> MakeEngine() {
  return std::make_unique<ReleaseEngine>(PrivacyParams(2.5, 1e-2),
                                         /*cache_capacity=*/8);
}

TEST(ServerGoldenTest, SessionMatchesGoldenFile) {
  auto engine = MakeEngine();
  ReleaseServer server(*engine);

  std::ifstream golden(kGoldenPath);
  ASSERT_TRUE(golden) << "missing golden file " << kGoldenPath;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(golden, line)) lines.push_back(line);

  const bool regen = std::getenv("DPJOIN_REGEN_GOLDEN") != nullptr;
  std::ostringstream regenerated;
  size_t i = 0;
  int exchanges = 0;
  while (i < lines.size()) {
    const std::string& current = lines[i];
    if (current.empty() || current[0] == '#') {
      regenerated << current << "\n";
      ++i;
      continue;
    }
    ASSERT_EQ(current.compare(0, 2, "> "), 0)
        << "golden line " << i + 1 << " must be '> request': " << current;
    const std::string request = current.substr(2);
    const std::string response = server.HandleLine(request);
    regenerated << "> " << request << "\n< " << response << "\n";
    ++i;
    if (regen) {
      // Seeding/regenerating: a response line may not exist yet.
      if (i < lines.size() && lines[i].compare(0, 2, "< ") == 0) ++i;
    } else {
      ASSERT_LT(i, lines.size()) << "golden ends mid-exchange";
      ASSERT_EQ(lines[i].compare(0, 2, "< "), 0)
          << "golden line " << i + 1 << " must be '< response'";
      const std::string expected = lines[i].substr(2);
      if (response != expected) {
        // Bytes differ: accept a structurally identical response whose
        // numbers agree to 1e-9 relative (libm last-ulp portability);
        // anything else is a genuine protocol change.
        auto got = JsonValue::Parse(response);
        auto want = JsonValue::Parse(expected);
        ASSERT_TRUE(got.ok() && want.ok()) << "request: " << request;
        EXPECT_TRUE(JsonApproxEqual(*got, *want))
            << "request: " << request << "\n  got: " << response
            << "\n want: " << expected;
      }
      ++i;
    }
    ++exchanges;
  }
  EXPECT_GE(exchanges, 10) << "golden session lost its coverage";

  if (regen) {
    std::ofstream out(kGoldenPath, std::ios::trunc);
    ASSERT_TRUE(out) << "cannot regenerate " << kGoldenPath;
    out << regenerated.str();
    GTEST_SKIP() << "regenerated " << kGoldenPath;
  }
}

TEST(ServerTest, RepeatedReleaseIsACacheHitWithZeroSpend) {
  auto engine = MakeEngine();
  ReleaseServer server(*engine);
  ASSERT_TRUE(
      JsonValue::Parse(server.HandleLine(
                           R"json({"cmd": "register", "name": "d", "source": )json"
                           R"json("generated:zipf(tuples=120,s=1.0,seed=4)",)json"
                           R"json( "attributes": ["A:6", "B:4", "C:6"], )json"
                           R"json("relations": ["R1:A,B", "R2:B,C"]})json"))
          ->Find("ok")
          ->AsBool());
  const std::string release_line =
      R"json({"cmd": "release", "dataset": "d", "seed": 9, "spec": ")json" +
      DemoSpec("r", "1.0", "laplace") + R"json("})json";

  auto first = JsonValue::Parse(server.HandleLine(release_line));
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(first->Find("ok")->AsBool()) << first->Serialize();
  EXPECT_FALSE(first->Find("from_cache")->AsBool());
  const double spent = first->Find("spent")->Find("epsilon")->AsDouble();
  EXPECT_DOUBLE_EQ(spent, 1.0);

  const int64_t fingerprints_before = InstanceFingerprintCount();
  for (int repeat = 0; repeat < 5; ++repeat) {
    auto again = JsonValue::Parse(server.HandleLine(release_line));
    ASSERT_TRUE(again.ok() && again->Find("ok")->AsBool());
    EXPECT_TRUE(again->Find("from_cache")->AsBool());
    EXPECT_EQ(again->Find("release")->AsString(),
              first->Find("release")->AsString());
    EXPECT_DOUBLE_EQ(again->Find("spent")->Find("epsilon")->AsDouble(),
                     spent)
        << "cache hits must not spend";
  }
  EXPECT_EQ(InstanceFingerprintCount(), fingerprints_before)
      << "cache hits must not re-fingerprint";
  EXPECT_EQ(engine->ledger().num_committed(), 1);

  // The released handle answers queries by id.
  auto answers = JsonValue::Parse(server.HandleLine(
      R"json({"cmd": "query", "release": ")json" + first->Find("release")->AsString() +
      R"json(", "queries": [0, 1, 0]})json"));
  ASSERT_TRUE(answers.ok() && answers->Find("ok")->AsBool())
      << answers->Serialize();
  ASSERT_EQ(answers->Find("answers")->items().size(), 3u);
  EXPECT_EQ(answers->Find("answers")->items()[0].AsDouble(),
            answers->Find("answers")->items()[2].AsDouble());
}

TEST(ServerTest, StatsBreakDownCacheHitsPerDataset) {
  // The engine-wide cache hit rate hides which datasets actually churn;
  // `stats.serving.per_dataset` must attribute every release submission
  // to the dataset it resolved to.
  auto engine = MakeEngine();
  ReleaseServer server(*engine);
  for (const char* name : {"alpha", "beta"}) {
    ASSERT_TRUE(JsonValue::Parse(
                    server.HandleLine(
                        std::string(R"json({"cmd": "register", "name": ")json") +
                        name +
                        R"json(", "source": "generated:uniform(tuples=40,seed=7)",)json"
                        R"json( "attributes": ["A:6", "B:4", "C:6"], )json"
                        R"json("relations": ["R1:A,B", "R2:B,C"]})json"))
                    ->Find("ok")
                    ->AsBool());
  }
  auto release = [&](const std::string& dataset, const std::string& spec_name) {
    auto response = JsonValue::Parse(server.HandleLine(
        R"json({"cmd": "release", "dataset": ")json" + dataset +
        R"json(", "seed": 3, "spec": ")json" +
        DemoSpec(spec_name, "0.25", "laplace") + R"json("})json"));
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_TRUE(response->Find("ok")->AsBool()) << response->Serialize();
  };
  // alpha: 1 mechanism run + 2 cache hits; beta: 2 distinct runs, 0 hits.
  release("alpha", "a1");
  release("alpha", "a1");
  release("alpha", "a1");
  release("beta", "b1");
  release("beta", "b2");

  auto stats = JsonValue::Parse(server.HandleLine(R"json({"cmd": "stats"})json"));
  ASSERT_TRUE(stats.ok() && stats->Find("ok")->AsBool());
  // A stdio server has no request-execution stage: the workers field must
  // exist (so dashboards can always read it) and be zero.
  const JsonValue* workers = stats->Find("serving")->Find("workers");
  ASSERT_NE(workers, nullptr) << stats->Serialize();
  EXPECT_DOUBLE_EQ(workers->AsDouble(), 0.0);
  const JsonValue* per_dataset =
      stats->Find("serving")->Find("per_dataset");
  ASSERT_NE(per_dataset, nullptr);
  ASSERT_EQ(per_dataset->members().size(), 2u);

  const JsonValue* alpha = per_dataset->Find("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_DOUBLE_EQ(alpha->Find("hits")->AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(alpha->Find("misses")->AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(alpha->Find("hit_rate")->AsDouble(), 2.0 / 3.0);

  const JsonValue* beta = per_dataset->Find("beta");
  ASSERT_NE(beta, nullptr);
  EXPECT_DOUBLE_EQ(beta->Find("hits")->AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(beta->Find("misses")->AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(beta->Find("hit_rate")->AsDouble(), 0.0);

  // Failed submissions (unknown dataset) must not be attributed anywhere.
  auto bad = JsonValue::Parse(server.HandleLine(
      R"json({"cmd": "release", "dataset": "ghost", "seed": 3, "spec": ")json" +
      DemoSpec("g", "0.25", "laplace") + R"json("})json"));
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->Find("ok")->AsBool());
  auto after = JsonValue::Parse(server.HandleLine(R"json({"cmd": "stats"})json"));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->Find("serving")->Find("per_dataset")->members().size(), 2u);
}

TEST(ServerTest, MalformedInputNeverKillsTheLoop) {
  auto engine = MakeEngine();
  ReleaseServer server(*engine);
  const char* bad_lines[] = {
      "not json",
      "[1, 2]",
      R"json({"no_cmd": 1})json",
      R"json({"cmd": 42})json",
      R"json({"cmd": "frobnicate"})json",
      R"json({"cmd": "register", "name": "x"})json",
      R"json({"cmd": "register", "name": "x", "source": "generated:zipf(tuples=1)",)json"
      R"json( "attributes": "A:4", "relations": []})json",
      R"json({"cmd": "release"})json",
      R"json({"cmd": "release", "spec": "not a spec"})json",
      R"json({"cmd": "query", "release": "12"})json",
      R"json({"cmd": "query", "release": "0x12"})json",
  };
  for (const char* line : bad_lines) {
    auto response = JsonValue::Parse(server.HandleLine(line));
    ASSERT_TRUE(response.ok()) << "response must stay valid JSON for "
                               << line;
    EXPECT_FALSE(response->Find("ok")->AsBool()) << line;
    EXPECT_NE(response->Find("error"), nullptr) << line;
  }
  // And the server still works afterwards.
  auto stats = JsonValue::Parse(server.HandleLine(R"json({"cmd": "stats"})json"));
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->Find("ok")->AsBool());
  EXPECT_DOUBLE_EQ(stats->Find("requests")->AsDouble(),
                   static_cast<double>(std::size(bad_lines)) + 1);
}

TEST(ServerTest, RejectsOutOfRangeNumericInputsCleanly) {
  // Casting an unrepresentable double to an integer is UB; these must be
  // clean protocol errors, never a crash of the long-lived loop.
  auto engine = MakeEngine();
  ReleaseServer server(*engine);
  ASSERT_TRUE(
      JsonValue::Parse(server.HandleLine(
                           R"json({"cmd": "register", "name": "d", "source": )json"
                           R"json("generated:uniform(tuples=30,seed=2)",)json"
                           R"json( "attributes": ["A:6", "B:4", "C:6"], )json"
                           R"json("relations": ["R1:A,B", "R2:B,C"]})json"))
          ->Find("ok")
          ->AsBool());
  auto released = JsonValue::Parse(server.HandleLine(
      R"json({"cmd": "release", "dataset": "d", "seed": 1, "spec": ")json" +
      DemoSpec("ub", "1.0", "laplace") + R"json("})json"));
  ASSERT_TRUE(released.ok() && released->Find("ok")->AsBool());
  const std::string release_id = released->Find("release")->AsString();

  const std::string bad_requests[] = {
      R"json({"cmd": "query", "release": ")json" + release_id +
          R"json(", "queries": [1e300]})json",
      R"json({"cmd": "query", "release": ")json" + release_id +
          R"json(", "queries": [-1e300]})json",
      R"json({"cmd": "query", "release": ")json" + release_id +
          R"json(", "queries": [1.5]})json",
      R"json({"cmd": "release", "dataset": "d", "seed": 1e300, "spec": ")json" +
          DemoSpec("ub2", "0.1", "laplace") + R"json("})json",
      R"json({"cmd": "release", "dataset": "d", "seed": -3, "spec": ")json" +
          DemoSpec("ub3", "0.1", "laplace") + R"json("})json",
  };
  for (const std::string& line : bad_requests) {
    auto response = JsonValue::Parse(server.HandleLine(line));
    ASSERT_TRUE(response.ok()) << line;
    EXPECT_FALSE(response->Find("ok")->AsBool()) << line;
  }
  // The loop survived and the release still serves.
  auto fine = JsonValue::Parse(server.HandleLine(
      R"json({"cmd": "query", "release": ")json" + release_id +
      R"json(", "queries": [0]})json"));
  ASSERT_TRUE(fine.ok());
  EXPECT_TRUE(fine->Find("ok")->AsBool()) << fine->Serialize();
}

TEST(ServerTest, ServeLoopAnswersUntilShutdown) {
  auto engine = MakeEngine();
  ReleaseServer server(*engine);
  std::istringstream in(
      "{\"cmd\": \"stats\"}\n"
      "\n"
      "{\"cmd\": \"ledger\"}\n"
      "{\"cmd\": \"shutdown\"}\n"
      "{\"cmd\": \"stats\"}\n");  // after shutdown: never reached
  std::ostringstream out;
  const int64_t handled = server.Serve(in, out);
  EXPECT_EQ(handled, 3);
  std::vector<std::string> responses;
  std::istringstream parse(out.str());
  std::string line;
  while (std::getline(parse, line)) responses.push_back(line);
  ASSERT_EQ(responses.size(), 3u);
  for (const std::string& response : responses) {
    auto v = JsonValue::Parse(response);
    ASSERT_TRUE(v.ok()) << response;
    EXPECT_TRUE(v->Find("ok")->AsBool());
  }
}

TEST(ServerTest, ConcurrentClientsShareOneBudgetAndCache) {
  // 8 threads drive the same server: one register, then everyone races the
  // same release + query. Exactly one mechanism run may spend.
  auto engine = MakeEngine();
  ReleaseServer server(*engine);
  ASSERT_TRUE(
      JsonValue::Parse(server.HandleLine(
                           R"json({"cmd": "register", "name": "d", "source": )json"
                           R"json("generated:uniform(tuples=90,seed=2)",)json"
                           R"json( "attributes": ["A:6", "B:4", "C:6"], )json"
                           R"json("relations": ["R1:A,B", "R2:B,C"]})json"))
          ->Find("ok")
          ->AsBool());
  const std::string release_line =
      R"json({"cmd": "release", "dataset": "d", "seed": 1, "spec": ")json" +
      DemoSpec("shared", "1.0", "laplace") + R"json("})json";
  std::atomic<int> fresh{0}, cached{0}, failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < 5; ++i) {
        auto response = JsonValue::Parse(server.HandleLine(release_line));
        if (!response.ok() || !response->Find("ok")->AsBool()) {
          failures.fetch_add(1);
          continue;
        }
        (response->Find("from_cache")->AsBool() ? cached : fresh)
            .fetch_add(1);
        auto query = JsonValue::Parse(server.HandleLine(
            R"json({"cmd": "query", "release": ")json" +
            response->Find("release")->AsString() + R"json(", "all": true})json"));
        if (!query.ok() || !query->Find("ok")->AsBool()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(fresh.load(), 1) << "exactly one client paid";
  EXPECT_EQ(cached.load(), 39);
  EXPECT_EQ(engine->ledger().num_committed(), 1);
  EXPECT_DOUBLE_EQ(engine->ledger().SpentEpsilon(), 1.0);
}

TEST(ServerTest, LedgerPersistsAcrossServerRestart) {
  const std::string ledger_path =
      ::testing::TempDir() + "/server_ledger.json";
  std::remove(ledger_path.c_str());
  ServerOptions options;
  options.ledger_path = ledger_path;
  const std::string register_line =
      R"json({"cmd": "register", "name": "d", "source": )json"
      R"json("generated:zipf(tuples=80,s=1.0,seed=6)",)json"
      R"json( "attributes": ["A:6", "B:4", "C:6"], )json"
      R"json("relations": ["R1:A,B", "R2:B,C"]})json";
  {
    auto engine = MakeEngine();  // cap ε = 2.5
    ReleaseServer server(*engine, options);
    ASSERT_TRUE(server.startup_status().ok());  // no file yet: fresh start
    ASSERT_TRUE(JsonValue::Parse(server.HandleLine(register_line))
                    ->Find("ok")
                    ->AsBool());
    auto response = JsonValue::Parse(server.HandleLine(
        R"json({"cmd": "release", "dataset": "d", "seed": 3, "spec": ")json" +
        DemoSpec("persisted", "2.0", "laplace") + R"json("})json"));
    ASSERT_TRUE(response.ok() && response->Find("ok")->AsBool())
        << response->Serialize();
  }
  {
    // Restart: the spent (2.0, 1e-5) is restored, so a second 2.0-ε release
    // is refused even though this process never ran a mechanism.
    auto engine = MakeEngine();
    ReleaseServer server(*engine, options);
    ASSERT_TRUE(server.startup_status().ok()) << server.startup_status();
    EXPECT_EQ(engine->ledger().num_committed(), 1);
    EXPECT_DOUBLE_EQ(engine->ledger().SpentEpsilon(), 2.0);
    ASSERT_TRUE(JsonValue::Parse(server.HandleLine(register_line))
                    ->Find("ok")
                    ->AsBool());
    auto refused = JsonValue::Parse(server.HandleLine(
        R"json({"cmd": "release", "dataset": "d", "seed": 4, "spec": ")json" +
        DemoSpec("greedy", "2.0", "laplace") + R"json("})json"));
    ASSERT_TRUE(refused.ok());
    EXPECT_FALSE(refused->Find("ok")->AsBool());
    EXPECT_NE(refused->Find("error")->AsString().find("FailedPrecondition"),
              std::string::npos);
  }
  {
    // A restart with a smaller cap refuses the file (startup_status).
    ReleaseEngine small(PrivacyParams(1.0, 1e-2));
    ReleaseServer server(small, options);
    EXPECT_TRUE(server.startup_status().IsFailedPrecondition())
        << server.startup_status();
  }
  {
    // An EXISTING but unreadable ledger path is a startup error, never a
    // silent fresh start — here the path is a directory, which stat()s
    // fine but cannot be read as a ledger.
    ServerOptions dir_options;
    dir_options.ledger_path = ::testing::TempDir();
    auto engine = MakeEngine();
    ReleaseServer server(*engine, dir_options);
    EXPECT_FALSE(server.startup_status().ok());
  }
  std::remove(ledger_path.c_str());
}

TEST(ServerTest, UnregisterFreesTheNameWhilePaidReleasesKeepServing) {
  auto engine = MakeEngine();
  ReleaseServer server(*engine);
  ASSERT_TRUE(
      JsonValue::Parse(server.HandleLine(
                           R"json({"cmd": "register", "name": "d", "source": )json"
                           R"json("generated:uniform(tuples=40,seed=3)",)json"
                           R"json( "attributes": ["A:6", "B:4", "C:6"], )json"
                           R"json("relations": ["R1:A,B", "R2:B,C"]})json"))
          ->Find("ok")
          ->AsBool());
  auto released = JsonValue::Parse(server.HandleLine(
      R"json({"cmd": "release", "dataset": "d", "seed": 2, "spec": ")json" +
      DemoSpec("kept", "1.0", "laplace") + R"json("})json"));
  ASSERT_TRUE(released.ok() && released->Find("ok")->AsBool());

  auto dropped = JsonValue::Parse(
      server.HandleLine(R"json({"cmd": "unregister", "name": "d"})json"));
  ASSERT_TRUE(dropped.ok());
  EXPECT_TRUE(dropped->Find("ok")->AsBool()) << dropped->Serialize();
  EXPECT_EQ(engine->catalog().size(), 0u);
  // Unknown name → clean error; double-unregister too.
  auto again = JsonValue::Parse(
      server.HandleLine(R"json({"cmd": "unregister", "name": "d"})json"));
  EXPECT_FALSE(again->Find("ok")->AsBool());

  // The paid release still serves (handles are shared, not owned by the
  // catalog) — but a re-release of the dropped name is NotFound.
  auto query = JsonValue::Parse(server.HandleLine(
      R"json({"cmd": "query", "release": ")json" +
      released->Find("release")->AsString() + R"json(", "queries": [0]})json"));
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(query->Find("ok")->AsBool()) << query->Serialize();
}

TEST(ServerTest, RegisterTrimsSchemaTokensLikeTheSpecParser) {
  // "R1:A, B" must mean the same thing on both front doors (spec files
  // already trim each token).
  auto engine = MakeEngine();
  ReleaseServer server(*engine);
  auto response = JsonValue::Parse(server.HandleLine(
      R"json({"cmd": "register", "name": "spaced", "source": )json"
      R"json("generated:uniform(tuples=10,seed=1)",)json"
      R"json( "attributes": ["A : 6", "B:4", "C:6"], )json"
      R"json("relations": ["R1:A, B", "R2: B , C"]})json"));
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->Find("ok")->AsBool()) << response->Serialize();
  EXPECT_DOUBLE_EQ(response->Find("num_relations")->AsDouble(), 2.0);
}

}  // namespace
}  // namespace dpjoin
