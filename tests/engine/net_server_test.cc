// Integration tests for the TCP serving front-end: concurrent pipelined
// clients over real loopback sockets, byte-compared against a reference
// ReleaseServer running the classic inline path, plus coalescing
// observability, the connection cap, and graceful shutdown.

#include "engine/net_server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "engine/server.h"
#include "net/line_channel.h"

namespace dpjoin {
namespace {

constexpr char kRegisterLine[] =
    R"json({"cmd": "register", "name": "demo", )json"
    R"json("source": "generated:zipf(tuples=120,s=1.0,seed=7)", )json"
    R"json("attributes": ["A:6", "B:4", "C:6"], )json"
    R"json("relations": ["R1:A,B", "R2:B,C"]})json";

std::string ReleaseLine() {
  return R"json({"cmd": "release", "dataset": "demo", "seed": 5, "spec": ")json"
         "# dpjoin-release-spec v1\\nname = net\\nattribute = A:6\\n"
         "attribute = B:4\\nattribute = C:6\\nrelation = R1:A,B\\n"
         "relation = R2:B,C\\nepsilon = 1.0\\ndelta = 1e-5\\n"
         "mechanism = auto\\nworkload = prefix:3" R"json("})json";
}

// A NetServer over a fresh engine, its event loop on a background thread,
// and an identically seeded reference ReleaseServer whose inline
// HandleLine responses define the expected bytes.
struct NetFixture {
  std::unique_ptr<ReleaseEngine> engine;
  std::unique_ptr<ReleaseServer> server;
  std::unique_ptr<NetServer> net;
  std::unique_ptr<ReleaseEngine> reference_engine;
  std::unique_ptr<ReleaseServer> reference;
  std::thread loop;
  std::string release_id;

  explicit NetFixture(NetServerOptions options) {
    engine = std::make_unique<ReleaseEngine>(PrivacyParams(2.5, 1e-2),
                                             /*cache_capacity=*/8);
    server = std::make_unique<ReleaseServer>(*engine);
    reference_engine = std::make_unique<ReleaseEngine>(
        PrivacyParams(2.5, 1e-2), /*cache_capacity=*/8);
    reference = std::make_unique<ReleaseServer>(*reference_engine);

    // Same deterministic session on both servers — the released ids (and
    // every noisy answer) must coincide, or nothing else below can.
    server->HandleLine(kRegisterLine);
    reference->HandleLine(kRegisterLine);
    auto released = JsonValue::Parse(server->HandleLine(ReleaseLine()));
    auto ref_released = JsonValue::Parse(reference->HandleLine(ReleaseLine()));
    EXPECT_TRUE(released.ok() && released->Find("ok")->AsBool());
    EXPECT_TRUE(ref_released.ok() && ref_released->Find("ok")->AsBool());
    release_id = released->Find("release")->AsString();
    EXPECT_EQ(release_id, ref_released->Find("release")->AsString())
        << "identically seeded engines must mint the same release id";

    net = std::make_unique<NetServer>(*server, options);
    const Status started = net->Start();
    EXPECT_TRUE(started.ok()) << started;
    loop = std::thread([this] { net->Run(); });
  }

  ~NetFixture() {
    if (loop.joinable()) {
      net->RequestShutdown();
      loop.join();
    }
  }

  std::string Expected(const std::string& line) {
    return reference->HandleLine(line);
  }
};

TEST(NetServerTest, ConcurrentPipelinedClientsMatchInlineBytes) {
  NetServerOptions options;
  options.batch_window_us = 500;
  NetFixture fx(options);
  constexpr int kClients = 8;

  // Per-client request scripts: good queries (ids and all), protocol
  // errors (out-of-range id, unknown release, malformed query) — every
  // line must answer with exactly the inline path's bytes, in order,
  // despite cross-client batching.
  std::vector<std::vector<std::string>> scripts(kClients);
  std::vector<std::vector<std::string>> expected(kClients);
  for (int k = 0; k < kClients; ++k) {
    auto q = [&](const std::string& payload) {
      return R"json({"cmd": "query", "release": ")json" + fx.release_id +
             R"json(", )json" + payload + "}";
    };
    scripts[k] = {
        q("\"queries\": [" + std::to_string(k % 3) + "]"),
        q("\"all\": true"),
        q("\"queries\": [" + std::to_string((k + 1) % 3) + ", " +
          std::to_string(k % 3) + "]"),
        q("\"queries\": [999]"),
        R"json({"cmd": "query", "release": "0xdead", "queries": [0]})json",
        q("\"nothing\": 1"),
        q("\"queries\": []"),
        q("\"all\": true"),
    };
    for (const std::string& line : scripts[k]) {
      expected[k].push_back(fx.Expected(line));
    }
  }

  std::vector<int> mismatches(kClients, -1);
  std::vector<std::thread> clients;
  for (int k = 0; k < kClients; ++k) {
    clients.emplace_back([k, &fx, &scripts, &expected, &mismatches] {
      auto client = LineClient::Connect("127.0.0.1", fx.net->port());
      if (!client.ok()) return;  // leaves mismatches[k] == -1 → failure
      // Fully pipelined: every request leaves before any response is read.
      for (const std::string& line : scripts[k]) {
        if (!client->SendLine(line).ok()) return;
      }
      int bad = 0;
      for (size_t i = 0; i < scripts[k].size(); ++i) {
        auto response = client->ReadLine();
        if (!response.ok() || *response != expected[k][i]) ++bad;
      }
      mismatches[k] = bad;
    });
  }
  for (std::thread& c : clients) c.join();
  for (int k = 0; k < kClients; ++k) {
    EXPECT_EQ(mismatches[k], 0) << "client " << k;
  }

  // The coalescing must be visible: with 8 clients racing, at least one
  // engine call served more than one request OR every call served one —
  // either way the histogram totals match the request count.
  auto stats = JsonValue::Parse(
      fx.server->HandleLine(R"json({"cmd": "stats"})json"));
  ASSERT_TRUE(stats.ok());
  const JsonValue* serving = stats->Find("serving");
  ASSERT_NE(serving, nullptr);
  // 8 clients x 5 successful query lines each (three of the eight lines
  // per script are protocol errors, which the stats do not count).
  EXPECT_DOUBLE_EQ(serving->Find("query_requests")->AsDouble(),
                   kClients * 5.0)
      << stats->Serialize();
}

TEST(NetServerTest, CapTriggeredCoalescingIsObservableInStats) {
  NetServerOptions options;
  // Window far beyond test patience: only the cap can flush, so all 8
  // parked queries MUST coalesce into exactly one engine call.
  options.batch_window_us = 10'000'000;
  options.batch_max = 8;
  NetFixture fx(options);
  constexpr int kClients = 8;

  const std::string line =
      R"json({"cmd": "query", "release": ")json" + fx.release_id +
      R"json(", "all": true})json";
  const std::string expected = fx.Expected(line);

  std::vector<int> ok(kClients, 0);
  std::vector<std::thread> clients;
  for (int k = 0; k < kClients; ++k) {
    clients.emplace_back([k, &fx, &line, &expected, &ok] {
      auto client = LineClient::Connect("127.0.0.1", fx.net->port());
      if (!client.ok()) return;
      if (!client->SendLine(line).ok()) return;
      auto response = client->ReadLine();
      ok[k] = response.ok() && *response == expected;
    });
  }
  for (std::thread& c : clients) c.join();
  for (int k = 0; k < kClients; ++k) EXPECT_TRUE(ok[k]) << "client " << k;

  EXPECT_EQ(fx.net->batcher().answer_all_calls(), 1)
      << "8 cap-gated all-requests must share one AnswerAll";
  auto stats = JsonValue::Parse(
      fx.server->HandleLine(R"json({"cmd": "stats"})json"));
  ASSERT_TRUE(stats.ok());
  const JsonValue* hist =
      stats->Find("serving")->Find("batch_size_histogram");
  ASSERT_NE(hist, nullptr);
  ASSERT_NE(hist->Find("8"), nullptr) << stats->Serialize();
  EXPECT_DOUBLE_EQ(hist->Find("8")->AsDouble(), 1.0) << stats->Serialize();
}

// Runs the 8-client fully pipelined soak against one fixture; returns the
// per-client mismatch counts (-1 = connect/send failure). `rounds` repeats
// the 8-line script, so each client pipelines 8 * rounds requests.
std::vector<int> RunPipelinedSoak(NetFixture& fx, int rounds) {
  constexpr int kClients = 8;
  std::vector<std::vector<std::string>> scripts(kClients);
  std::vector<std::vector<std::string>> expected(kClients);
  for (int k = 0; k < kClients; ++k) {
    auto q = [&](const std::string& payload) {
      return R"json({"cmd": "query", "release": ")json" + fx.release_id +
             R"json(", )json" + payload + "}";
    };
    const std::vector<std::string> round = {
        q("\"queries\": [" + std::to_string(k % 3) + "]"),
        q("\"all\": true"),
        q("\"queries\": [" + std::to_string((k + 1) % 3) + ", " +
          std::to_string(k % 3) + "]"),
        q("\"queries\": [999]"),
        R"json({"cmd": "query", "release": "0xdead", "queries": [0]})json",
        q("\"nothing\": 1"),
        q("\"queries\": []"),
        q("\"all\": true"),
    };
    for (int r = 0; r < rounds; ++r) {
      scripts[k].insert(scripts[k].end(), round.begin(), round.end());
    }
    for (const std::string& line : scripts[k]) {
      expected[k].push_back(fx.Expected(line));
    }
  }

  std::vector<int> mismatches(kClients, -1);
  std::vector<std::thread> clients;
  for (int k = 0; k < kClients; ++k) {
    clients.emplace_back([k, &fx, &scripts, &expected, &mismatches] {
      auto client = LineClient::Connect("127.0.0.1", fx.net->port());
      if (!client.ok()) return;
      for (const std::string& line : scripts[k]) {
        if (!client->SendLine(line).ok()) return;
      }
      int bad = 0;
      for (size_t i = 0; i < scripts[k].size(); ++i) {
        auto response = client->ReadLine();
        if (!response.ok() || *response != expected[k][i]) ++bad;
      }
      mismatches[k] = bad;
    });
  }
  for (std::thread& c : clients) c.join();
  return mismatches;
}

TEST(NetServerTest, MultiWorkerSoakByteIdenticalToSingleWorkerAndStdio) {
  // The expected bytes come from the reference server's inline HandleLine —
  // i.e. exactly the stdio loop's output — so a zero-mismatch soak proves
  // --workers=4 ≡ --workers=1 ≡ stdio, byte for byte, under full
  // 8-client pipelining.
  for (const int64_t workers : {int64_t{4}, int64_t{1}}) {
    NetServerOptions options;
    options.batch_window_us = 500;
    options.workers = workers;
    NetFixture fx(options);
    const std::vector<int> mismatches = RunPipelinedSoak(fx, /*rounds=*/3);
    for (size_t k = 0; k < mismatches.size(); ++k) {
      EXPECT_EQ(mismatches[k], 0) << "workers=" << workers << " client " << k;
    }
  }
}

TEST(NetServerTest, MultiWorkerStatsExposeWorkersAndGroupWaits) {
  NetServerOptions options;
  options.batch_window_us = 500;
  options.workers = 4;
  NetFixture fx(options);
  const std::vector<int> mismatches = RunPipelinedSoak(fx, /*rounds=*/1);
  for (size_t k = 0; k < mismatches.size(); ++k) {
    EXPECT_EQ(mismatches[k], 0) << "client " << k;
  }

  auto stats =
      JsonValue::Parse(fx.server->HandleLine(R"json({"cmd": "stats"})json"));
  ASSERT_TRUE(stats.ok());
  const JsonValue* serving = stats->Find("serving");
  ASSERT_NE(serving, nullptr);
  ASSERT_NE(serving->Find("workers"), nullptr) << stats->Serialize();
  EXPECT_DOUBLE_EQ(serving->Find("workers")->AsDouble(), 4.0);

  // The soaked release must expose its execution-stage wait: one sample
  // per executed group, totals consistent with the maximum.
  const JsonValue* per_release = serving->Find("per_release");
  ASSERT_NE(per_release, nullptr);
  const JsonValue* entry = per_release->Find(fx.release_id);
  ASSERT_NE(entry, nullptr) << stats->Serialize();
  const JsonValue* wait = entry->Find("wait");
  ASSERT_NE(wait, nullptr) << stats->Serialize();
  const double count = wait->Find("count")->AsDouble();
  const double total_us = wait->Find("total_us")->AsDouble();
  const double max_us = wait->Find("max_us")->AsDouble();
  EXPECT_GE(count, 1.0) << stats->Serialize();
  EXPECT_GE(max_us, 0.0);
  EXPECT_GE(total_us, max_us);
  EXPECT_LE(total_us, count * 60e6) << "a group waited over a minute?";
}

TEST(NetServerTest, MultiWorkerLaneKeepsPipelinedCommandOrder) {
  // One client pipelines state-changing commands whose SECOND depends on
  // the FIRST having executed (release needs the just-registered dataset).
  // The per-connection lane must keep submission order even with 4 workers
  // racing; the reference server defines the expected bytes.
  NetServerOptions options;
  options.workers = 4;
  NetFixture fx(options);

  const std::string register2 =
      R"json({"cmd": "register", "name": "demo2", )json"
      R"json("source": "generated:zipf(tuples=90,s=1.1,seed=11)", )json"
      R"json("attributes": ["A:6", "B:4", "C:6"], )json"
      R"json("relations": ["R1:A,B", "R2:B,C"]})json";
  const std::string release2 =
      R"json({"cmd": "release", "dataset": "demo2", "seed": 9, "spec": ")json"
      "# dpjoin-release-spec v1\\nname = lane\\nattribute = A:6\\n"
      "attribute = B:4\\nattribute = C:6\\nrelation = R1:A,B\\n"
      "relation = R2:B,C\\nepsilon = 1.0\\ndelta = 1e-5\\n"
      "mechanism = auto\\nworkload = prefix:3" R"json("})json";
  const std::vector<std::string> script = {
      register2, release2, R"json({"cmd": "ledger"})json",
      R"json({"cmd": "unknown-cmd"})json"};
  std::vector<std::string> expected;
  for (const std::string& line : script) expected.push_back(fx.Expected(line));

  auto client = LineClient::Connect("127.0.0.1", fx.net->port());
  ASSERT_TRUE(client.ok()) << client.status();
  for (const std::string& line : script) {
    ASSERT_TRUE(client->SendLine(line).ok());
  }
  for (size_t i = 0; i < script.size(); ++i) {
    auto response = client->ReadLine();
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(*response, expected[i]) << "line " << i;
  }
  auto released = JsonValue::Parse(expected[1]);
  ASSERT_TRUE(released.ok());
  EXPECT_TRUE(released->Find("ok")->AsBool())
      << "release must have found the just-registered dataset";
}

TEST(NetServerTest, RefusesConnectionsBeyondMaxConns) {
  NetServerOptions options;
  options.max_conns = 1;
  NetFixture fx(options);

  auto first = LineClient::Connect("127.0.0.1", fx.net->port());
  ASSERT_TRUE(first.ok()) << first.status();
  // A full round trip guarantees the loop accepted (and kept) us.
  ASSERT_TRUE(first->SendLine(R"json({"cmd": "ledger"})json").ok());
  auto ledger = first->ReadLine();
  ASSERT_TRUE(ledger.ok()) << ledger.status();

  auto second = LineClient::Connect("127.0.0.1", fx.net->port());
  ASSERT_TRUE(second.ok()) << second.status();
  auto refusal = second->ReadLine();
  ASSERT_TRUE(refusal.ok()) << refusal.status();
  auto parsed = JsonValue::Parse(*refusal);
  ASSERT_TRUE(parsed.ok()) << *refusal;
  EXPECT_FALSE(parsed->Find("ok")->AsBool());
  EXPECT_NE(parsed->Find("error")->AsString().find("connection limit"),
            std::string::npos);
  auto eof = second->ReadLine();
  EXPECT_FALSE(eof.ok()) << "refused connection must be closed";
}

TEST(NetServerTest, ShutdownDrainsParkedQueries) {
  NetServerOptions options;
  options.batch_window_us = 10'000'000;  // nothing flushes but the drain
  NetFixture fx(options);

  const std::string line =
      R"json({"cmd": "query", "release": ")json" + fx.release_id +
      R"json(", "queries": [0, 1, 2]})json";
  const std::string expected = fx.Expected(line);

  auto client = LineClient::Connect("127.0.0.1", fx.net->port());
  ASSERT_TRUE(client.ok()) << client.status();
  const int64_t before = fx.server->num_requests();
  ASSERT_TRUE(client->SendLine(line).ok());
  // Wait until the loop has parked the query in the batcher...
  for (int i = 0; i < 5000 && fx.server->num_requests() == before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(fx.server->num_requests(), before) << "query never enqueued";

  // ...then shut down from another thread: the parked query must still be
  // answered (with the exact inline bytes) before the connection closes.
  fx.net->RequestShutdown();
  auto response = client->ReadLine();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(*response, expected);
  auto eof = client->ReadLine();
  EXPECT_FALSE(eof.ok()) << "connection must close after the drain";
  fx.loop.join();
}

TEST(NetServerTest, ShutdownCommandAcksThenStopsTheLoop) {
  NetFixture fx(NetServerOptions{});
  auto client = LineClient::Connect("127.0.0.1", fx.net->port());
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE(client->SendLine(R"json({"cmd": "shutdown"})json").ok());
  auto ack = client->ReadLine();
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(*ack, fx.Expected(R"json({"cmd": "shutdown"})json"));
  fx.loop.join();

  // The listener is gone: new connections fail.
  auto late = LineClient::Connect("127.0.0.1", fx.net->port());
  EXPECT_FALSE(late.ok());
}

}  // namespace
}  // namespace dpjoin
