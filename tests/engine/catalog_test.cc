#include "engine/catalog.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <cerrno>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "relational/generators.h"
#include "relational/io.h"
#include "relational/join_query.h"

namespace dpjoin {
namespace {

std::shared_ptr<const JoinQuery> TwoTableQuery() {
  return std::make_shared<JoinQuery>(MakeTwoTableQuery(4, 5, 4));
}

std::string DumpCsv(const Instance& instance) {
  std::stringstream out;
  DPJOIN_CHECK(WriteInstanceCsv(instance, out).ok());
  return out.str();
}

TEST(DataSourceTest, ParsesEveryForm) {
  auto name = DataSource::Parse("  traffic_2026  ");
  ASSERT_TRUE(name.ok()) << name.status();
  EXPECT_EQ(name->kind, DataSource::Kind::kCatalogName);
  EXPECT_EQ(name->name, "traffic_2026");
  EXPECT_EQ(name->CanonicalString(), "traffic_2026");

  auto csv = DataSource::Parse("csv:data/two_table.csv");
  ASSERT_TRUE(csv.ok()) << csv.status();
  EXPECT_EQ(csv->kind, DataSource::Kind::kCsv);
  EXPECT_EQ(csv->csv_path, "data/two_table.csv");
  EXPECT_EQ(csv->CanonicalString(), "csv:data/two_table.csv");

  auto zipf = DataSource::Parse("generated:zipf(tuples=400, s=1.25, seed=9)");
  ASSERT_TRUE(zipf.ok()) << zipf.status();
  EXPECT_EQ(zipf->kind, DataSource::Kind::kGenerated);
  EXPECT_EQ(zipf->generator, DataSource::Generator::kZipf);
  EXPECT_EQ(zipf->tuples, 400);
  EXPECT_DOUBLE_EQ(zipf->zipf_s, 1.25);
  EXPECT_EQ(zipf->seed, 9u);

  auto uniform = DataSource::Parse("generated:uniform(tuples=10)");
  ASSERT_TRUE(uniform.ok()) << uniform.status();
  EXPECT_EQ(uniform->generator, DataSource::Generator::kUniform);
  EXPECT_EQ(uniform->seed, 1u);  // default

  // Canonical strings parse back to an equal source.
  auto reparsed = DataSource::Parse(zipf->CanonicalString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->CanonicalString(), zipf->CanonicalString());
}

TEST(DataSourceTest, RejectsMalformedSources) {
  const char* cases[] = {
      "",
      "   ",
      "csv:",
      "tarball:foo.tgz",          // unknown scheme
      "generated:zipf",           // no argument list
      "generated:zipf()",         // missing tuples
      "generated:zipf(s=1)",      // missing tuples
      "generated:zipf(tuples=-1)",
      "generated:zipf(tuples=4,bogus=1)",
      "generated:zipf(tuples=4,s=nan)",
      "generated:uniform(tuples=4,s=1)",  // s is zipf-only
      "generated:pareto(tuples=4)",
      "generated:zipf(tuples=four)",
      "generated:zipf(tuples=4,seed=-1)",  // negative seed: error, not wrap
  };
  for (const char* text : cases) {
    EXPECT_FALSE(DataSource::Parse(text).ok()) << text;
  }
  // Seeds span the full uint64 range, and canonical strings parse back.
  auto huge = DataSource::Parse("generated:zipf(tuples=4,seed=18446744073709551615)");
  ASSERT_TRUE(huge.ok()) << huge.status();
  EXPECT_EQ(huge->seed, 18446744073709551615ULL);
  EXPECT_TRUE(DataSource::Parse(huge->CanonicalString()).ok());
}

TEST(DataSourceTest, GeneratedSourcesAreDeterministic) {
  auto source = DataSource::Parse("generated:zipf(tuples=200,s=1.0,seed=7)");
  ASSERT_TRUE(source.ok());
  const auto query = TwoTableQuery();

  // Bit-identical across repeated runs AND across ambient thread counts:
  // generation is strictly serial from the seed.
  std::string baseline;
  {
    ScopedThreads scoped(1);
    auto instance = source->Materialize(query, "");
    ASSERT_TRUE(instance.ok()) << instance.status();
    baseline = DumpCsv(*instance);
  }
  for (int threads : {2, 8}) {
    ScopedThreads scoped(threads);
    auto instance = source->Materialize(query, "");
    ASSERT_TRUE(instance.ok()) << instance.status();
    EXPECT_EQ(DumpCsv(*instance), baseline) << "threads = " << threads;
  }
  // A different seed is different data.
  auto other = DataSource::Parse("generated:zipf(tuples=200,s=1.0,seed=8)");
  ASSERT_TRUE(other.ok());
  EXPECT_NE(DumpCsv(*other->Materialize(query, "")), baseline);
}

TEST(CatalogTest, RegisterComputesTheFingerprintExactlyOnce) {
  DataCatalog catalog;
  Rng rng(3);
  Instance instance = MakeUniformInstance(*TwoTableQuery(), 30, rng);
  const uint64_t expected_fingerprint = InstanceFingerprint(instance);

  const int64_t before = InstanceFingerprintCount();
  auto handle = catalog.Register("demo", std::move(instance));
  ASSERT_TRUE(handle.ok()) << handle.status();
  EXPECT_EQ(InstanceFingerprintCount() - before, 1);
  EXPECT_EQ((*handle)->fingerprint(), expected_fingerprint);
  EXPECT_EQ((*handle)->name(), "demo");
  EXPECT_EQ((*handle)->source(), "in-memory");
  EXPECT_EQ((*handle)->input_size(), 60);

  // Lookups never re-fingerprint.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(catalog.Get("demo").ok());
  }
  EXPECT_EQ(InstanceFingerprintCount() - before, 1);
}

TEST(CatalogTest, DuplicateNamesAndUnknownLookupsFail) {
  DataCatalog catalog;
  Rng rng(4);
  ASSERT_TRUE(
      catalog.Register("a", MakeUniformInstance(*TwoTableQuery(), 5, rng))
          .ok());
  auto duplicate =
      catalog.Register("a", MakeUniformInstance(*TwoTableQuery(), 5, rng));
  EXPECT_EQ(duplicate.status().code(), StatusCode::kAlreadyExists);

  auto missing = catalog.Get("b");
  EXPECT_TRUE(missing.status().IsNotFound());
  EXPECT_NE(missing.status().message().find("'b'"), std::string::npos);
  // The error must NOT leak the registered names (it reaches protocol
  // clients verbatim) — only a count.
  EXPECT_EQ(missing.status().message().find("'a'"), std::string::npos);
  EXPECT_NE(missing.status().message().find("1 dataset(s)"),
            std::string::npos);

  EXPECT_FALSE(catalog.Register(" padded ",
                                MakeUniformInstance(*TwoTableQuery(), 5, rng))
                   .ok());
  EXPECT_FALSE(
      catalog.Register("", MakeUniformInstance(*TwoTableQuery(), 5, rng))
          .ok());
  // ':' is reserved for source schemes: such a name could never be
  // resolved back, and could collide with auto-registration keys.
  EXPECT_FALSE(catalog.Register("prod:traffic",
                                MakeUniformInstance(*TwoTableQuery(), 5, rng))
                   .ok());
  EXPECT_FALSE(catalog
                   .RegisterSource("prod:traffic",
                                   "generated:uniform(tuples=5,seed=1)",
                                   TwoTableQuery())
                   .ok());

  EXPECT_TRUE(catalog.Unregister("a"));
  EXPECT_FALSE(catalog.Unregister("a"));
  EXPECT_EQ(catalog.size(), 0u);
}

TEST(CatalogTest, ResolveAutoRegistersLoadableSourcesOnce) {
  DataCatalog catalog;
  const auto query = TwoTableQuery();
  const std::string source = "generated:uniform(tuples=25,seed=3)";

  const int64_t before = InstanceFingerprintCount();
  auto first = catalog.Resolve(source, query);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = catalog.Resolve(source, query);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first->get(), second->get()) << "same handle object reused";
  EXPECT_EQ(InstanceFingerprintCount() - before, 1);
  EXPECT_EQ(catalog.size(), 1u);

  // A bare name resolves through the registry (and fails when absent).
  EXPECT_TRUE(catalog.Resolve("nope", query).status().IsNotFound());
  Rng rng(5);
  ASSERT_TRUE(
      catalog.Register("named", MakeUniformInstance(*query, 5, rng)).ok());
  auto named = catalog.Resolve("named", query);
  ASSERT_TRUE(named.ok()) << named.status();
  EXPECT_EQ((*named)->name(), "named");
}

TEST(CatalogTest, ResolveDistinguishesSchemasForTheSameSource) {
  // The same CSV read under two different schemas must not collide.
  DataCatalog catalog;
  const auto query_a = TwoTableQuery();
  const auto query_b =
      std::make_shared<JoinQuery>(MakeTwoTableQuery(4, 5, 6));
  Rng rng(6);
  const Instance instance = MakeUniformInstance(*query_a, 12, rng);
  const std::string path = ::testing::TempDir() + "/catalog_shared.csv";
  {
    std::ofstream file(path);
    file << DumpCsv(instance);
  }
  auto a = catalog.Resolve("csv:" + path, query_a);
  ASSERT_TRUE(a.ok()) << a.status();
  auto b = catalog.Resolve("csv:" + path, query_b);
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_NE((*a)->name(), (*b)->name());
  // Same tuples, but over different domains — the instances are distinct
  // objects with independently computed fingerprints.
  EXPECT_EQ((*a)->instance().query().ToString(), query_a->ToString());
  EXPECT_EQ((*b)->instance().query().ToString(), query_b->ToString());
}

TEST(CatalogTest, ResolveDistinguishesBaseDirsForRelativeCsvPaths) {
  // The same relative csv: path under two base dirs is two different
  // files; serving the first directory's data for the second would be a
  // silent wrong-dataset release.
  DataCatalog catalog;
  const auto query = TwoTableQuery();
  const std::string dir_a = ::testing::TempDir() + "/base_a";
  const std::string dir_b = ::testing::TempDir() + "/base_b";
  ASSERT_EQ(::mkdir(dir_a.c_str(), 0755) == 0 || errno == EEXIST, true);
  ASSERT_EQ(::mkdir(dir_b.c_str(), 0755) == 0 || errno == EEXIST, true);
  Rng rng_a(7), rng_b(8);
  {
    std::ofstream file(dir_a + "/data.csv");
    file << DumpCsv(MakeUniformInstance(*query, 10, rng_a));
  }
  {
    std::ofstream file(dir_b + "/data.csv");
    file << DumpCsv(MakeUniformInstance(*query, 10, rng_b));
  }
  auto a = catalog.Resolve("csv:data.csv", query, dir_a);
  ASSERT_TRUE(a.ok()) << a.status();
  auto b = catalog.Resolve("csv:data.csv", query, dir_b);
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_NE((*a)->fingerprint(), (*b)->fingerprint());
  // Absolute paths ignore base_dir and share one registration.
  auto abs1 = catalog.Resolve("csv:" + dir_a + "/data.csv", query, dir_b);
  ASSERT_TRUE(abs1.ok()) << abs1.status();
  auto abs2 = catalog.Resolve("csv:" + dir_a + "/data.csv", query, "");
  ASSERT_TRUE(abs2.ok()) << abs2.status();
  EXPECT_EQ(abs1->get(), abs2->get());
}

TEST(CatalogTest, ConcurrentResolveOfTheSameSourceRegistersOnce) {
  DataCatalog catalog;
  const auto query = TwoTableQuery();
  const std::string source = "generated:zipf(tuples=100,s=1.0,seed=2)";
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        auto handle = catalog.Resolve(source, query);
        if (!handle.ok() || *handle == nullptr) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(catalog.size(), 1u)
      << "racing resolvers must converge on one registration";
}

}  // namespace
}  // namespace dpjoin
