#include "engine/planner.h"

#include <gtest/gtest.h>

#include <cmath>

#include "query/workloads.h"
#include "relational/join_query.h"
#include "testing/brute_force.h"
#include "testing/queries.h"

namespace dpjoin {
namespace {

ReleaseSpec SpecFor(const JoinQuery& query,
                    MechanismKind mechanism = MechanismKind::kAuto) {
  ReleaseSpec spec;
  spec.name = "planner_test";
  for (int a = 0; a < query.num_attributes(); ++a) {
    spec.attributes.push_back(
        {query.attribute_name(a), query.domain_size(a)});
  }
  for (int r = 0; r < query.num_relations(); ++r) {
    spec.relation_names.push_back("R" + std::to_string(r + 1));
    std::vector<std::string> attrs;
    for (int a : query.attributes_of(r).Elements()) {
      attrs.push_back(query.attribute_name(a));
    }
    spec.relation_attrs.push_back(std::move(attrs));
  }
  spec.epsilon = 1.0;
  spec.delta = 1e-5;
  spec.mechanism = mechanism;
  spec.workload = WorkloadFamilyKind::kRandomSign;
  spec.workload_per_table = 2;
  return spec;
}

struct Fixture {
  Instance instance;
  QueryFamily family;
};

Fixture MakeFixture(const JoinQuery& query, const ReleaseSpec& spec,
                    uint64_t seed = 1) {
  Rng rng(seed);
  Instance instance = testing::RandomInstance(query, 15, rng);
  QueryFamily family = *spec.BuildWorkload(query);
  return Fixture{std::move(instance), std::move(family)};
}

TEST(PlannerTest, AutoPicksPmwForSingleRelation) {
  const JoinQuery query = *JoinQuery::Create({{"A", 16}}, {{"A"}});
  ReleaseSpec spec = SpecFor(query);
  // Above the |Q| <= log2|D| crossover, so the workload-size rule defers
  // to the relation-count dispatch.
  spec.workload_per_table = 7;
  Fixture fx = MakeFixture(query, spec);
  auto plan = PlanRelease(spec, fx.instance, fx.family);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->mechanism, MechanismKind::kPmw);
  EXPECT_NE(plan->rationale.find("single relation"), std::string::npos);
  EXPECT_TRUE(std::isfinite(plan->predicted_error));
  EXPECT_GT(plan->predicted_error, 0.0);
}

TEST(PlannerTest, AutoPicksTwoTableForTwoRelations) {
  const JoinQuery query = MakeTwoTableQuery(4, 5, 4);
  ReleaseSpec spec = SpecFor(query);
  spec.workload_per_table = 3;  // |Q| = 16 > log2|D| = 9: past the crossover
  Fixture fx = MakeFixture(query, spec);
  auto plan = PlanRelease(spec, fx.instance, fx.family);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->mechanism, MechanismKind::kTwoTable);
  EXPECT_NE(plan->rationale.find("two relations"), std::string::npos);
}

TEST(PlannerTest, AutoPicksHierarchicalForStar) {
  const JoinQuery query = MakeStarQuery(3, 4);
  const ReleaseSpec spec = SpecFor(query);
  Fixture fx = MakeFixture(query, spec);
  auto plan = PlanRelease(spec, fx.instance, fx.family);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(fx.instance.query().IsHierarchical());
  EXPECT_EQ(plan->mechanism, MechanismKind::kHierarchical);
  EXPECT_NE(plan->rationale.find("hierarchical"), std::string::npos);
}

TEST(PlannerTest, AutoPicksPmwForNonHierarchicalPath) {
  const JoinQuery query = MakePathQuery(3, 4);
  const ReleaseSpec spec = SpecFor(query);
  Fixture fx = MakeFixture(query, spec);
  ASSERT_FALSE(fx.instance.query().IsHierarchical());
  auto plan = PlanRelease(spec, fx.instance, fx.family);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->mechanism, MechanismKind::kPmw);
  EXPECT_NE(plan->rationale.find("non-hierarchical"), std::string::npos);
}

TEST(PlannerTest, CrossoverQueriesIsTheMwLearningDimension) {
  EXPECT_EQ(PmwLaplaceCrossoverQueries(2.0), 1);
  EXPECT_EQ(PmwLaplaceCrossoverQueries(16.0), 4);
  EXPECT_EQ(PmwLaplaceCrossoverQueries(400.0), 9);   // ceil(log2 400)
  EXPECT_EQ(PmwLaplaceCrossoverQueries(1 << 26), 26);
  EXPECT_GE(PmwLaplaceCrossoverQueries(1.0), 1);
}

TEST(PlannerTest, AutoCrossesOverToLaplaceForSmallWorkloads) {
  // |Q| = 9 <= log2|D| = 9 on a two-table join: below the MW learning
  // dimension, auto answers directly instead of dispatching on m.
  const JoinQuery query = MakeTwoTableQuery(4, 5, 4);
  const ReleaseSpec spec = SpecFor(query);  // per_table = 2 -> |Q| = 9
  Fixture fx = MakeFixture(query, spec);
  auto plan = PlanRelease(spec, fx.instance, fx.family);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->mechanism, MechanismKind::kLaplace);
  EXPECT_NE(plan->rationale.find("learning dimension"), std::string::npos);
  EXPECT_NE(plan->rationale.find("flops/round"), std::string::npos);

  // A single relation with a tiny domain crosses over too.
  const JoinQuery single = *JoinQuery::Create({{"A", 16}}, {{"A"}});
  const ReleaseSpec sspec = SpecFor(single);  // |Q| = 3 <= log2 16 = 4
  Fixture sfx = MakeFixture(single, sspec);
  auto splan = PlanRelease(sspec, sfx.instance, sfx.family);
  ASSERT_TRUE(splan.ok()) << splan.status();
  EXPECT_EQ(splan->mechanism, MechanismKind::kLaplace);
}

TEST(PlannerTest, AutoPicksLaplaceForCountingWorkload) {
  const JoinQuery query = MakeTwoTableQuery(4, 5, 4);
  ReleaseSpec spec = SpecFor(query);
  spec.workload = WorkloadFamilyKind::kCounting;
  Fixture fx = MakeFixture(query, spec);
  ASSERT_EQ(fx.family.TotalCount(), 1);
  auto plan = PlanRelease(spec, fx.instance, fx.family);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->mechanism, MechanismKind::kLaplace);
  EXPECT_NE(plan->rationale.find("|Q| = 1"), std::string::npos);
  EXPECT_TRUE(std::isfinite(plan->predicted_error));
}

TEST(PlannerTest, AutoPicksLaplaceBeyondDenseEnvelope) {
  // |D| = (2^20)^2 = 2^40 cells >> the 2^26 dense envelope.
  const JoinQuery query =
      *JoinQuery::Create({{"A", int64_t{1} << 20}, {"B", int64_t{1} << 20}},
                         {{"A"}, {"B"}});
  const ReleaseSpec spec = SpecFor(query);
  Rng rng(2);
  Instance instance = Instance::Make(query);
  ASSERT_TRUE(instance.AddTuple(0, {5}, 3).ok());
  ASSERT_TRUE(instance.AddTuple(1, {9}, 2).ok());
  const QueryFamily family = MakeCountingFamily(query);
  ReleaseSpec counting = spec;
  counting.workload = WorkloadFamilyKind::kCounting;
  auto plan = PlanRelease(counting, instance, family);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->mechanism, MechanismKind::kLaplace);
  EXPECT_NE(plan->rationale.find("envelope"), std::string::npos);
}

TEST(PlannerTest, ExplicitMechanismIsValidatedStructurally) {
  // two_table on a 3-relation path: refused.
  {
    const JoinQuery query = MakePathQuery(3, 4);
    const ReleaseSpec spec = SpecFor(query, MechanismKind::kTwoTable);
    Fixture fx = MakeFixture(query, spec);
    auto plan = PlanRelease(spec, fx.instance, fx.family);
    EXPECT_TRUE(plan.status().IsInvalidArgument());
  }
  // hierarchical on a non-hierarchical path: refused.
  {
    const JoinQuery query = MakePathQuery(3, 4);
    const ReleaseSpec spec = SpecFor(query, MechanismKind::kHierarchical);
    Fixture fx = MakeFixture(query, spec);
    auto plan = PlanRelease(spec, fx.instance, fx.family);
    EXPECT_TRUE(plan.status().IsInvalidArgument());
  }
  // pmw beyond the dense envelope: refused.
  {
    const JoinQuery query =
        *JoinQuery::Create({{"A", int64_t{1} << 20}, {"B", int64_t{1} << 20}},
                           {{"A"}, {"B"}});
    const ReleaseSpec spec = SpecFor(query, MechanismKind::kPmw);
    Instance instance = Instance::Make(query);
    const QueryFamily family = MakeCountingFamily(query);
    auto plan = PlanRelease(spec, instance, family);
    EXPECT_TRUE(plan.status().IsInvalidArgument());
    EXPECT_NE(plan.status().message().find("envelope"), std::string::npos);
  }
  // explicit laplace is always structurally fine.
  {
    const JoinQuery query = MakePathQuery(3, 4);
    const ReleaseSpec spec = SpecFor(query, MechanismKind::kLaplace);
    Fixture fx = MakeFixture(query, spec);
    auto plan = PlanRelease(spec, fx.instance, fx.family);
    ASSERT_TRUE(plan.ok()) << plan.status();
    EXPECT_EQ(plan->mechanism, MechanismKind::kLaplace);
    EXPECT_NE(plan->rationale.find("explicitly requested"),
              std::string::npos);
  }
}

// A single relation with 10 attributes of size 16: |D| = 2^40 cells, far
// beyond the 2^26 dense envelope, but every attribute's marginal workload
// factors into 10 groups of 16 cells.
JoinQuery MakeHugeProductQuery() {
  std::vector<AttributeSpec> attrs;
  std::vector<std::string> order;
  for (int d = 0; d < 10; ++d) {
    const std::string name(1, static_cast<char>('A' + d));
    attrs.push_back({name, 16});
    order.push_back(name);
  }
  return *JoinQuery::Create(attrs, {order});
}

TEST(PlannerTest, AutoPlansFactoredPmwBeyondTheDenseEnvelope) {
  const JoinQuery query = MakeHugeProductQuery();
  ReleaseSpec spec = SpecFor(query);
  spec.workload = WorkloadFamilyKind::kMarginalAll;
  // |Q| = 1 + 10·16 = 161 > log2|D| = 40: the workload-size rule wants MW.
  Fixture fx = MakeFixture(query, spec);
  auto plan = PlanRelease(spec, fx.instance, fx.family);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->mechanism, MechanismKind::kPmw);
  EXPECT_TRUE(plan->factored);
  ASSERT_EQ(plan->factor_groups.size(), 10u);
  for (size_t k = 0; k < 10; ++k) {
    EXPECT_EQ(plan->factor_groups[k], (std::vector<size_t>{k}));
    EXPECT_EQ(plan->factor_cells[k], 16);
  }
  // The rationale quotes the factor sizes and the factored memory total.
  EXPECT_NE(plan->rationale.find("FactoredTensor"), std::string::npos)
      << plan->rationale;
  EXPECT_NE(plan->rationale.find("160 cells"), std::string::npos)
      << plan->rationale;
  EXPECT_NE(plan->rationale.find("10 disjoint attribute groups"),
            std::string::npos)
      << plan->rationale;
}

TEST(PlannerTest, ExplicitPmwBeyondTheEnvelopeUsesTheFactoredBacking) {
  const JoinQuery query = MakeHugeProductQuery();
  ReleaseSpec spec = SpecFor(query, MechanismKind::kPmw);
  spec.workload = WorkloadFamilyKind::kMarginalAll;
  Fixture fx = MakeFixture(query, spec);
  auto plan = PlanRelease(spec, fx.instance, fx.family);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->mechanism, MechanismKind::kPmw);
  EXPECT_TRUE(plan->factored);

  // Pinning pmw_backing = dense keeps the old refusal.
  ReleaseSpec dense = spec;
  dense.pmw_backing = PmwBackingKind::kDense;
  auto refused = PlanRelease(dense, fx.instance, fx.family);
  EXPECT_TRUE(refused.status().IsInvalidArgument());
  EXPECT_NE(refused.status().message().find("envelope"), std::string::npos);
}

TEST(PlannerTest, ExplicitFactoredBackingAppliesOnFeasibleDomainsToo) {
  const JoinQuery query =
      *JoinQuery::Create({{"A", 8}, {"B", 4}}, {{"A", "B"}});
  ReleaseSpec spec = SpecFor(query, MechanismKind::kPmw);
  spec.workload = WorkloadFamilyKind::kMarginalAll;
  spec.pmw_backing = PmwBackingKind::kFactored;
  Fixture fx = MakeFixture(query, spec);
  auto plan = PlanRelease(spec, fx.instance, fx.family);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->factored);
  EXPECT_EQ(plan->factor_groups.size(), 2u);
  EXPECT_NE(plan->rationale.find("pmw_backing = factored"),
            std::string::npos)
      << plan->rationale;
}

TEST(PlannerTest, FactoredBackingRefusesNonProductWorkloads) {
  const JoinQuery query =
      *JoinQuery::Create({{"A", 8}, {"B", 4}}, {{"A", "B"}});
  ReleaseSpec spec = SpecFor(query, MechanismKind::kPmw);
  spec.workload = WorkloadFamilyKind::kRandomSign;  // dense values only
  spec.pmw_backing = PmwBackingKind::kFactored;
  Fixture fx = MakeFixture(query, spec);
  auto plan = PlanRelease(spec, fx.instance, fx.family);
  EXPECT_TRUE(plan.status().IsInvalidArgument());
  EXPECT_NE(plan.status().message().find("product"), std::string::npos)
      << plan.status().message();
}

TEST(PlannerTest, FactoredBackingNeedsASingleRelationPmwRelease) {
  const JoinQuery query = MakeTwoTableQuery(4, 5, 4);
  ReleaseSpec spec = SpecFor(query, MechanismKind::kPmw);
  spec.workload = WorkloadFamilyKind::kMarginalAll;
  spec.pmw_backing = PmwBackingKind::kFactored;
  Fixture fx = MakeFixture(query, spec);
  auto plan = PlanRelease(spec, fx.instance, fx.family);
  EXPECT_TRUE(plan.status().IsInvalidArgument());
  EXPECT_NE(plan.status().message().find("single-relation"),
            std::string::npos)
      << plan.status().message();
}

TEST(PlannerTest, StatsMeasureTheInstance) {
  const JoinQuery query = MakeTwoTableQuery(4, 5, 4);
  const ReleaseSpec spec = SpecFor(query);
  Fixture fx = MakeFixture(query, spec, 7);
  auto plan = PlanRelease(spec, fx.instance, fx.family);
  ASSERT_TRUE(plan.ok());
  const InstanceStats& stats = plan->stats;
  EXPECT_EQ(stats.num_relations, 2);
  EXPECT_EQ(stats.input_size, fx.instance.InputSize());
  EXPECT_GE(stats.residual_sensitivity, stats.local_sensitivity - 1e-9);
  EXPECT_EQ(stats.query_count, fx.family.TotalCount());
  EXPECT_DOUBLE_EQ(stats.release_domain_cells,
                   query.ReleaseDomainSize());
}

TEST(PlannerTest, PredictedLaplaceErrorGrowsWithQueries) {
  const PrivacyParams params(1.0, 1e-5);
  const double few = PredictedLaplaceError(2.0, 4, params,
                                           CompositionRule::kAdvanced);
  const double many = PredictedLaplaceError(2.0, 4096, params,
                                            CompositionRule::kAdvanced);
  EXPECT_GT(many, few);
  // Basic composition is worse than advanced for large |Q|.
  EXPECT_GT(PredictedLaplaceError(2.0, 4096, params, CompositionRule::kBasic),
            many);
}

}  // namespace
}  // namespace dpjoin
