// Deterministic unit tests for cross-client query micro-batching.
//
// The load-bearing property is byte-identity: for any request, the
// batched path must produce EXACTLY the response line the inline
// ReleaseServer::HandleLine path produces. Every test here phrases its
// expectation that way — the inline response is computed first and the
// batched response is string-compared against it.

#include "engine/query_batcher.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "engine/server.h"

namespace dpjoin {
namespace {

std::string DemoSpec(const std::string& name, const std::string& epsilon) {
  return "# dpjoin-release-spec v1\\nname = " + name +
         "\\nattribute = A:6\\nattribute = B:4\\nattribute = C:6\\n"
         "relation = R1:A,B\\nrelation = R2:B,C\\nepsilon = " + epsilon +
         "\\ndelta = 1e-5\\nmechanism = auto\\nworkload = prefix:3";
}

struct Fixture {
  std::unique_ptr<ReleaseEngine> engine;
  std::unique_ptr<ReleaseServer> server;

  Fixture() {
    engine = std::make_unique<ReleaseEngine>(PrivacyParams(2.5, 1e-2),
                                             /*cache_capacity=*/8);
    server = std::make_unique<ReleaseServer>(*engine);
    const std::string registered = server->HandleLine(
        R"json({"cmd": "register", "name": "demo", )json"
        R"json("source": "generated:zipf(tuples=120,s=1.0,seed=7)", )json"
        R"json("attributes": ["A:6", "B:4", "C:6"], )json"
        R"json("relations": ["R1:A,B", "R2:B,C"]})json");
    EXPECT_NE(registered.find("\"ok\": true"), std::string::npos)
        << registered;
  }

  // Releases a spec and returns the 0x-hex release id.
  std::string Release(const std::string& name, const std::string& epsilon) {
    auto response = JsonValue::Parse(server->HandleLine(
        R"json({"cmd": "release", "dataset": "demo", "seed": 5, "spec": ")json" +
        DemoSpec(name, epsilon) + R"json("})json"));
    EXPECT_TRUE(response.ok() && response->Find("ok")->AsBool())
        << (response.ok() ? response->Serialize() : response.status().ToString());
    return response->Find("release")->AsString();
  }

  std::string QueryLine(const std::string& release,
                        const std::string& payload) {
    return R"json({"cmd": "query", "release": ")json" + release +
           R"json(", )json" + payload + "}";
  }

  // Enqueues the query line into `batcher`, returning a slot that receives
  // the batched response.
  std::shared_ptr<std::string> Enqueue(QueryBatcher& batcher,
                                       const std::string& line) {
    auto request = JsonValue::Parse(line);
    EXPECT_TRUE(request.ok()) << line;
    auto cmd = ParseQueryCommand(*request);
    EXPECT_TRUE(cmd.ok()) << cmd.status();
    auto slot = std::make_shared<std::string>();
    batcher.Enqueue(std::move(cmd).value(),
                    [slot](std::string response) { *slot = std::move(response); });
    return slot;
  }
};

TEST(QueryBatcherTest, CoalescesAllRequestsIntoOneAnswerAllCall) {
  Fixture fx;
  const std::string release = fx.Release("r1", "1.0");
  const std::string line = fx.QueryLine(release, R"("all": true)");
  const std::string inline_response = fx.server->HandleLine(line);

  QueryBatcher batcher(*fx.server, {});
  std::vector<std::shared_ptr<std::string>> slots;
  for (int i = 0; i < 8; ++i) slots.push_back(fx.Enqueue(batcher, line));
  EXPECT_EQ(batcher.pending_requests(), 8);

  EXPECT_EQ(batcher.Flush(), 8);
  EXPECT_EQ(batcher.answer_all_calls(), 1)
      << "8 identical all-requests must share one engine evaluation";
  EXPECT_EQ(batcher.answer_batch_calls(), 0);
  EXPECT_EQ(batcher.pending_requests(), 0);
  for (const auto& slot : slots) EXPECT_EQ(*slot, inline_response);
}

TEST(QueryBatcherTest, MergesIdListsIntoOneAnswerBatchCall) {
  Fixture fx;
  const std::string release = fx.Release("r2", "1.0");
  const std::vector<std::string> lines = {
      fx.QueryLine(release, R"("queries": [0, 1])"),
      fx.QueryLine(release, R"("queries": [2])"),
      fx.QueryLine(release, R"("queries": [1, 0, 2])"),
      fx.QueryLine(release, R"("queries": [])"),
  };
  std::vector<std::string> inline_responses;
  for (const std::string& line : lines) {
    inline_responses.push_back(fx.server->HandleLine(line));
  }

  QueryBatcher batcher(*fx.server, {});
  std::vector<std::shared_ptr<std::string>> slots;
  for (const std::string& line : lines) {
    slots.push_back(fx.Enqueue(batcher, line));
  }
  EXPECT_EQ(batcher.Flush(), static_cast<int64_t>(lines.size()));
  EXPECT_EQ(batcher.answer_batch_calls(), 1)
      << "same-release id lists must merge into one AnswerBatch";
  for (size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(*slots[i], inline_responses[i]) << lines[i];
  }
}

TEST(QueryBatcherTest, GroupsByReleaseId) {
  Fixture fx;
  const std::string r1 = fx.Release("g1", "0.5");
  const std::string r2 = fx.Release("g2", "0.7");
  ASSERT_NE(r1, r2);
  const std::string line1 = fx.QueryLine(r1, R"("all": true)");
  const std::string line2 = fx.QueryLine(r2, R"("all": true)");
  const std::string inline1 = fx.server->HandleLine(line1);
  const std::string inline2 = fx.server->HandleLine(line2);
  ASSERT_NE(inline1, inline2) << "different releases must answer differently";

  QueryBatcher batcher(*fx.server, {});
  auto slot1a = fx.Enqueue(batcher, line1);
  auto slot2 = fx.Enqueue(batcher, line2);
  auto slot1b = fx.Enqueue(batcher, line1);
  EXPECT_EQ(batcher.Flush(), 3);
  EXPECT_EQ(batcher.answer_all_calls(), 2) << "one AnswerAll per release";
  EXPECT_EQ(*slot1a, inline1);
  EXPECT_EQ(*slot1b, inline1);
  EXPECT_EQ(*slot2, inline2);
}

TEST(QueryBatcherTest, UnknownReleaseGetsInlineErrorBytes) {
  Fixture fx;
  const std::string line =
      R"json({"cmd": "query", "release": "0xdeadbeef", "queries": [0]})json";
  const std::string inline_response = fx.server->HandleLine(line);
  ASSERT_NE(inline_response.find("\"ok\": false"), std::string::npos);

  QueryBatcher batcher(*fx.server, {});
  auto slot = fx.Enqueue(batcher, line);
  EXPECT_EQ(batcher.Flush(), 1);
  EXPECT_EQ(*slot, inline_response);
  EXPECT_EQ(batcher.answer_all_calls(), 0);
  EXPECT_EQ(batcher.answer_batch_calls(), 0);
}

TEST(QueryBatcherTest, OutOfRangeIdsKeepRequestLocalErrorBytes) {
  Fixture fx;
  const std::string release = fx.Release("r3", "1.0");
  // The bad id sits at index 1 OF ITS OWN REQUEST; merging with the valid
  // neighbor must not shift the index in the error message.
  const std::string good = fx.QueryLine(release, R"("queries": [0, 1])");
  const std::string bad = fx.QueryLine(release, R"("queries": [0, 99999])");
  const std::string inline_good = fx.server->HandleLine(good);
  const std::string inline_bad = fx.server->HandleLine(bad);
  ASSERT_NE(inline_bad.find("batch[1]"), std::string::npos) << inline_bad;

  QueryBatcher batcher(*fx.server, {});
  auto slot_good = fx.Enqueue(batcher, good);
  auto slot_bad = fx.Enqueue(batcher, bad);
  EXPECT_EQ(batcher.Flush(), 2);
  EXPECT_EQ(*slot_good, inline_good)
      << "a bad neighbor must not poison a valid request";
  EXPECT_EQ(*slot_bad, inline_bad);
}

TEST(QueryBatcherTest, FlushOnEmptyIsANoOp) {
  Fixture fx;
  QueryBatcher batcher(*fx.server, {});
  EXPECT_EQ(batcher.Flush(), 0);
  EXPECT_EQ(batcher.answer_all_calls(), 0);
  EXPECT_EQ(batcher.answer_batch_calls(), 0);
}

TEST(QueryBatcherTest, ShouldFlushOnCapTracksOption) {
  Fixture fx;
  const std::string release = fx.Release("r4", "0.3");
  QueryBatcher::Options options;
  options.max_requests = 2;
  QueryBatcher batcher(*fx.server, options);
  const std::string line = fx.QueryLine(release, R"("queries": [0])");
  fx.Enqueue(batcher, line);
  EXPECT_FALSE(batcher.ShouldFlushOnCap());
  fx.Enqueue(batcher, line);
  EXPECT_TRUE(batcher.ShouldFlushOnCap());
}

TEST(QueryBatcherTest, RecordsServingStats) {
  Fixture fx;
  const std::string release = fx.Release("r5", "1.0");
  QueryBatcher batcher(*fx.server, {});
  const std::string line = fx.QueryLine(release, R"("queries": [0, 1])");
  for (int i = 0; i < 4; ++i) fx.Enqueue(batcher, line);
  batcher.Flush();

  auto stats = JsonValue::Parse(
      fx.server->HandleLine(R"json({"cmd": "stats"})json"));
  ASSERT_TRUE(stats.ok());
  const JsonValue* serving = stats->Find("serving");
  ASSERT_NE(serving, nullptr);
  EXPECT_DOUBLE_EQ(serving->Find("query_requests")->AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(serving->Find("engine_calls")->AsDouble(), 1.0);
  const JsonValue* hist = serving->Find("batch_size_histogram");
  ASSERT_NE(hist, nullptr);
  ASSERT_NE(hist->Find("4"), nullptr) << stats->Serialize();
  EXPECT_DOUBLE_EQ(hist->Find("4")->AsDouble(), 1.0)
      << "one batch of 4 lands in the '4' bucket";
  const JsonValue* per_release = serving->Find("per_release");
  ASSERT_NE(per_release, nullptr);
  const JsonValue* entry = per_release->Find(release);
  ASSERT_NE(entry, nullptr) << stats->Serialize();
  EXPECT_DOUBLE_EQ(entry->Find("requests")->AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(entry->Find("queries")->AsDouble(), 8.0);
}

TEST(QueryBatcherTest, ConcurrentEnqueueAndFlushLosesNothing) {
  Fixture fx;
  const std::string release = fx.Release("r6", "1.0");
  const std::string line = fx.QueryLine(release, R"("queries": [0])");
  const std::string inline_response = fx.server->HandleLine(line);

  QueryBatcher batcher(*fx.server, {});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::atomic<int> answered{0};
  std::atomic<int> mismatched{0};

  auto request = JsonValue::Parse(line);
  ASSERT_TRUE(request.ok());
  auto parsed = ParseQueryCommand(*request);
  ASSERT_TRUE(parsed.ok());
  const QueryCommand cmd = *parsed;

  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&batcher, &answered, &mismatched, &cmd,
                            &inline_response] {
      for (int i = 0; i < kPerThread; ++i) {
        batcher.Enqueue(cmd, [&answered, &mismatched,
                              &inline_response](std::string response) {
          if (response != inline_response) {
            mismatched.fetch_add(1);
          }
          answered.fetch_add(1);
        });
      }
    });
  }
  std::thread flusher([&batcher] {
    for (int i = 0; i < 200; ++i) batcher.Flush();
  });
  for (std::thread& p : producers) p.join();
  flusher.join();
  batcher.Flush();  // whatever the racing flushes missed

  EXPECT_EQ(answered.load(), kThreads * kPerThread)
      << "every enqueued request must be answered exactly once";
  EXPECT_EQ(mismatched.load(), 0);
  EXPECT_EQ(batcher.pending_requests(), 0);
}

}  // namespace
}  // namespace dpjoin
