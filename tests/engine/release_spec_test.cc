#include "engine/release_spec.h"

#include <gtest/gtest.h>

#include <string>

namespace dpjoin {
namespace {

constexpr char kFullConfig[] = R"(# dpjoin-release-spec v1
# comments and blank lines are ignored

name      = demo
attribute = A:8
attribute = B:6
attribute = C:8   # inline comment
relation  = R1:A,B
relation  = R2:B,C
epsilon   = 1.5
delta     = 1e-5
mechanism = two_table
workload  = prefix:4
workload_seed = 13
threads   = 2
pmw_rounds = 3
pmw_max_rounds = 24
pmw_epsilon_prime = 0.25
laplace_rule = basic
dataset   = csv:data/two_table.csv
)";

TEST(ReleaseSpecTest, ParsesEveryField) {
  auto spec = ParseReleaseSpec(std::string(kFullConfig));
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->name, "demo");
  ASSERT_EQ(spec->attributes.size(), 3u);
  EXPECT_EQ(spec->attributes[1].name, "B");
  EXPECT_EQ(spec->attributes[1].domain_size, 6);
  ASSERT_EQ(spec->relation_names.size(), 2u);
  EXPECT_EQ(spec->relation_names[0], "R1");
  EXPECT_EQ(spec->relation_attrs[1], (std::vector<std::string>{"B", "C"}));
  EXPECT_DOUBLE_EQ(spec->epsilon, 1.5);
  EXPECT_DOUBLE_EQ(spec->delta, 1e-5);
  EXPECT_EQ(spec->mechanism, MechanismKind::kTwoTable);
  EXPECT_EQ(spec->workload, WorkloadFamilyKind::kPrefix);
  EXPECT_EQ(spec->workload_per_table, 4);
  EXPECT_EQ(spec->workload_seed, 13u);
  EXPECT_EQ(spec->num_threads, 2);
  EXPECT_EQ(spec->pmw_rounds, 3);
  EXPECT_EQ(spec->pmw_max_rounds, 24);
  EXPECT_DOUBLE_EQ(spec->pmw_epsilon_prime, 0.25);
  EXPECT_EQ(spec->laplace_rule, CompositionRule::kBasic);
  EXPECT_EQ(spec->dataset, "csv:data/two_table.csv");
  EXPECT_TRUE(spec->parse_notes.empty());
}

TEST(ReleaseSpecTest, DeprecatedInstanceKeyAliasesDataset) {
  auto spec = ParseReleaseSpec(std::string(
      "# dpjoin-release-spec v1\n"
      "attribute = A:4\nrelation = R1:A\n"
      "instance = data/foo.csv\n"));
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->dataset, "csv:data/foo.csv");
  ASSERT_EQ(spec->parse_notes.size(), 1u);
  EXPECT_NE(spec->parse_notes[0].find("deprecated"), std::string::npos);
  EXPECT_NE(spec->parse_notes[0].find("csv:data/foo.csv"), std::string::npos);

  // Both keys at once is an error, in either order.
  EXPECT_FALSE(ParseReleaseSpec(std::string(
                   "# dpjoin-release-spec v1\n"
                   "attribute = A:4\nrelation = R1:A\n"
                   "instance = a.csv\ndataset = csv:b.csv\n"))
                   .ok());
  EXPECT_FALSE(ParseReleaseSpec(std::string(
                   "# dpjoin-release-spec v1\n"
                   "attribute = A:4\nrelation = R1:A\n"
                   "dataset = csv:b.csv\ninstance = a.csv\n"))
                   .ok());
}

TEST(ReleaseSpecTest, BuildsQueryAndWorkload) {
  auto spec = ParseReleaseSpec(std::string(kFullConfig));
  ASSERT_TRUE(spec.ok());
  auto query = spec->BuildQuery();
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->num_relations(), 2);
  EXPECT_EQ(query->num_attributes(), 3);
  EXPECT_EQ(query->domain_size(1), 6);
  auto family = spec->BuildWorkload(*query);
  ASSERT_TRUE(family.ok()) << family.status();
  // prefix:4 → 4 + leading all-ones per relation.
  EXPECT_EQ(family->TotalCount(), 25);
}

TEST(ReleaseSpecTest, WorkloadBuildIsDeterministic) {
  auto spec = ParseReleaseSpec(std::string(kFullConfig));
  ASSERT_TRUE(spec.ok());
  spec->workload = WorkloadFamilyKind::kRandomUniform;
  const JoinQuery query = *spec->BuildQuery();
  const QueryFamily a = *spec->BuildWorkload(query);
  const QueryFamily b = *spec->BuildWorkload(query);
  ASSERT_EQ(a.TotalCount(), b.TotalCount());
  for (int rel = 0; rel < a.num_relations(); ++rel) {
    for (size_t j = 0; j < a.table_queries(rel).size(); ++j) {
      EXPECT_EQ(a.table_queries(rel)[j].values,
                b.table_queries(rel)[j].values);
    }
  }
}

TEST(ReleaseSpecTest, RejectsMissingMagic) {
  auto spec = ParseReleaseSpec(std::string("name = x\n"));
  EXPECT_TRUE(spec.status().IsInvalidArgument());
}

TEST(ReleaseSpecTest, RejectsMalformedConfigs) {
  const std::string magic = "# dpjoin-release-spec v1\n";
  const std::string schema =
      "attribute = A:4\nrelation = R1:A\n";
  struct Case {
    const char* label;
    std::string body;
  };
  const Case cases[] = {
      {"unknown key", schema + "frobnicate = 1\n"},
      {"duplicate scalar key", schema + "epsilon = 1\nepsilon = 2\n"},
      {"missing equals", schema + "epsilon 1\n"},
      {"bad number", schema + "epsilon = banana\n"},
      {"trailing junk number", schema + "epsilon = 1.0x\n"},
      {"bad mechanism", schema + "mechanism = quantum\n"},
      {"bad workload kind", schema + "workload = sparkle:3\n"},
      {"bad laplace rule", schema + "laplace_rule = sideways\n"},
      {"attribute missing size", "attribute = A\nrelation = R1:A\n"},
      {"relation missing attrs", "attribute = A:4\nrelation = R1\n"},
      {"no attributes", "relation = R1:A\n"},
      {"no relations", "attribute = A:4\n"},
      {"zero epsilon", schema + "epsilon = 0\n"},
      {"zero delta", schema + "delta = 0\n"},
      {"delta above half", schema + "delta = 0.7\n"},
      {"negative pmw rounds", schema + "pmw_rounds = -1\n"},
      {"zero pmw max rounds", schema + "pmw_max_rounds = 0\n"},
      {"negative threads", schema + "threads = -2\n"},
      {"huge threads", schema + "threads = 1000\n"},
      {"unknown relation attribute", "attribute = A:4\nrelation = R1:A,Z\n"},
      {"bad dataset scheme", schema + "dataset = tarball:foo.tgz\n"},
      {"generated without tuples", schema + "dataset = generated:zipf(s=1)\n"},
      {"unknown generator", schema + "dataset = generated:pareto(tuples=5)\n"},
      {"duplicate attribute", "attribute = A:4\nattribute = A:4\n"
                              "relation = R1:A\n"},
      {"duplicate relation name",
       "attribute = A:4\nattribute = B:4\nrelation = R1:A\nrelation = R1:B\n"},
  };
  for (const Case& c : cases) {
    auto spec = ParseReleaseSpec(magic + c.body);
    EXPECT_FALSE(spec.ok()) << c.label;
  }
}

TEST(ReleaseSpecTest, HashIgnoresFormattingButNotSemantics) {
  auto a = ParseReleaseSpec(std::string(kFullConfig));
  ASSERT_TRUE(a.ok());
  // Same semantics, different comments/spacing.
  auto b = ParseReleaseSpec(std::string(
      "# dpjoin-release-spec v1\n"
      "name=demo\nattribute=A:8\nattribute=B:6\nattribute=C:8\n"
      "relation=R1:A,B\nrelation=R2:B,C\n"
      "epsilon=1.5\ndelta=1e-5\nmechanism=two_table\nworkload=prefix:4\n"
      "workload_seed=13\nthreads=2\npmw_rounds=3\npmw_max_rounds=24\n"
      "pmw_epsilon_prime=0.25\nlaplace_rule=basic\n"
      "dataset=csv:data/two_table.csv\n"));
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->CanonicalString(), b->CanonicalString());
  EXPECT_EQ(a->Hash(), b->Hash());

  ReleaseSpec changed = *a;
  changed.epsilon = 2.0;
  EXPECT_NE(changed.Hash(), a->Hash());
  changed = *a;
  changed.workload_seed = 14;
  EXPECT_NE(changed.Hash(), a->Hash());
  // num_threads is NOT semantic: releases are bit-identical at every thread
  // count, so a thread-count-only change must still hit the serving cache.
  changed = *a;
  changed.num_threads = 8;
  EXPECT_EQ(changed.Hash(), a->Hash());
  // The dataset source is NOT semantic either: the engine keys releases by
  // spec hash ⊕ catalog fingerprint, so the DATA decides identity, never
  // the string naming where it came from.
  changed = *a;
  changed.dataset = "some_registered_name";
  EXPECT_EQ(changed.Hash(), a->Hash());
}

TEST(ReleaseSpecTest, ValidateRejectsNameAttrListMismatch) {
  ReleaseSpec spec;
  spec.attributes = {{"A", 4}, {"B", 4}};
  spec.relation_attrs = {{"A"}, {"B"}};
  spec.relation_names = {"R1"};  // one name for two attribute lists
  const Status status = spec.Validate();
  EXPECT_TRUE(status.IsInvalidArgument()) << status;
  spec.relation_names.push_back("R2");
  EXPECT_TRUE(spec.Validate().ok()) << spec.Validate();
}

TEST(ReleaseSpecTest, MechanismAndWorkloadNamesRoundTrip) {
  for (MechanismKind kind :
       {MechanismKind::kAuto, MechanismKind::kLaplace, MechanismKind::kTwoTable,
        MechanismKind::kHierarchical, MechanismKind::kPmw}) {
    auto parsed = ParseMechanism(MechanismName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  for (WorkloadFamilyKind kind :
       {WorkloadFamilyKind::kCounting, WorkloadFamilyKind::kRandomSign,
        WorkloadFamilyKind::kRandomUniform, WorkloadFamilyKind::kPrefix,
        WorkloadFamilyKind::kPoint, WorkloadFamilyKind::kMarginal}) {
    auto parsed = ParseWorkloadFamily(WorkloadFamilyName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(ReleaseSpecTest, CountingWorkloadIsSingleton) {
  auto spec = ParseReleaseSpec(std::string(
      "# dpjoin-release-spec v1\n"
      "attribute = A:4\nrelation = R1:A\nworkload = counting\n"));
  ASSERT_TRUE(spec.ok()) << spec.status();
  const JoinQuery query = *spec->BuildQuery();
  auto family = spec->BuildWorkload(query);
  ASSERT_TRUE(family.ok());
  EXPECT_EQ(family->TotalCount(), 1);
}

}  // namespace
}  // namespace dpjoin
