#include "lowerbound/hard_instances.h"

#include <gtest/gtest.h>

#include "query/evaluation.h"
#include "relational/join.h"
#include "sensitivity/local_sensitivity.h"

namespace dpjoin {
namespace {

TEST(Figure1Test, JoinSizesAreNAndZero) {
  const Figure1Pair pair = MakeFigure1Pair(16);
  EXPECT_DOUBLE_EQ(JoinCount(pair.instance), 16.0);
  EXPECT_DOUBLE_EQ(JoinCount(pair.neighbor), 0.0);
  EXPECT_EQ(pair.instance.InputSize(), 17);
  EXPECT_EQ(pair.neighbor.InputSize(), 16);
  EXPECT_DOUBLE_EQ(LocalSensitivity(pair.instance), 16.0);
}

TEST(Figure1Test, RegionMassCapturesJoinCells) {
  const Figure1Pair pair = MakeFigure1Pair(8);
  const DenseTensor join = JoinTensor(pair.instance);
  // All of I's join mass lies in D′.
  EXPECT_DOUBLE_EQ(Figure1RegionMass(pair.instance, join), 8.0);
  const DenseTensor join_prime = JoinTensor(pair.neighbor);
  EXPECT_DOUBLE_EQ(Figure1RegionMass(pair.neighbor, join_prime), 0.0);
}

TEST(Theorem35Test, ConstructionInvariants) {
  // T = [3, 1, 2] over d = 3, rows = 4, Δ = 5.
  const std::vector<int64_t> table = {3, 1, 2};
  auto built = MakeTheorem35Instance(table, 4, 5);
  ASSERT_TRUE(built.ok());
  // Join size = Δ·ΣT = 5·6 = 30.
  EXPECT_DOUBLE_EQ(JoinCount(built->instance), 30.0);
  // Local sensitivity = Δ (every B-value has deg_2 = Δ).
  EXPECT_DOUBLE_EQ(LocalSensitivity(built->instance), 5.0);
}

TEST(Theorem35Test, NeighborsMapToNeighbors) {
  // Changing T by one row changes the construction by one R1 tuple.
  auto a = MakeTheorem35Instance({2, 1}, 3, 2);
  auto b = MakeTheorem35Instance({3, 1}, 3, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  int64_t distance = 0;
  for (int rel = 0; rel < 2; ++rel) {
    const Relation& ra = a->instance.relation(rel);
    const Relation& rb = b->instance.relation(rel);
    for (int64_t code = 0; code < ra.tuple_space().size(); ++code) {
      distance += std::abs(ra.Frequency(code) - rb.Frequency(code));
    }
  }
  EXPECT_EQ(distance, 1);
}

TEST(Theorem35Test, ReductionIdentityQPrimeEqualsDeltaTimesQ) {
  // The proof's key identity: q′(I) = Δ·q(T) for q′ = (q∘π_A, all-ones).
  const std::vector<int64_t> table = {3, 0, 2, 1};
  auto built = MakeTheorem35Instance(table, 4, 3);
  ASSERT_TRUE(built.ok());
  const std::vector<std::vector<double>> queries = {
      {1.0, 1.0, 1.0, 1.0},
      {0.5, -0.5, 1.0, 0.0},
      {-1.0, 1.0, -1.0, 1.0},
  };
  auto family = LiftSingleTableQueries(*built, queries);
  ASSERT_TRUE(family.ok());
  for (size_t j = 0; j < queries.size(); ++j) {
    const double lifted = EvaluateOnInstance(
        *family, {static_cast<int64_t>(j), 0}, built->instance);
    const double direct = SingleTableAnswer(table, queries[j]);
    EXPECT_NEAR(lifted, 3.0 * direct, 1e-9) << "query " << j;
  }
}

TEST(Theorem35Test, ValidationErrors) {
  EXPECT_FALSE(MakeTheorem35Instance({}, 2, 2).ok());
  EXPECT_FALSE(MakeTheorem35Instance({1}, 0, 2).ok());
  EXPECT_FALSE(MakeTheorem35Instance({5}, 2, 2).ok());  // count > rows
  auto built = MakeTheorem35Instance({1, 1}, 2, 2);
  ASSERT_TRUE(built.ok());
  EXPECT_FALSE(LiftSingleTableQueries(*built, {}).ok());
  EXPECT_FALSE(LiftSingleTableQueries(*built, {{1.0}}).ok());  // arity
}

TEST(Figure3Test, DegreeStaircase) {
  const Instance instance = MakeFigure3Instance(6);
  // Input size = 2·Σi = 2·21 = 42; join size = Σi² = 91; Δ = 6.
  EXPECT_EQ(instance.InputSize(), 42);
  EXPECT_DOUBLE_EQ(JoinCount(instance), 91.0);
  EXPECT_DOUBLE_EQ(LocalSensitivity(instance), 6.0);
  // Degrees over B are exactly 1..k on both sides.
  for (int side = 0; side < 2; ++side) {
    const auto degrees =
        instance.relation(side).DegreeMap(AttributeSet::Of(1));
    for (int64_t b = 0; b < 6; ++b) {
      EXPECT_EQ(degrees.at(b), b + 1);
    }
  }
}

TEST(Example42Test, LevelStructure) {
  const Example42Instance example = MakeExample42Instance(8);
  // k = 8: levels i = 0, 1, 2 with ⌈64/8^i⌉ = 64, 8, 1 values, degrees
  // 1, 2, 4.
  ASSERT_EQ(example.level_values.size(), 3u);
  EXPECT_EQ(example.level_values[0], 64);
  EXPECT_EQ(example.level_values[1], 8);
  EXPECT_EQ(example.level_values[2], 1);
  EXPECT_EQ(example.level_degrees[2], 4);
  // Δ = max degree = 4; count = Σ values·deg² = 64 + 32 + 16 = 112.
  EXPECT_DOUBLE_EQ(LocalSensitivity(example.instance), 4.0);
  EXPECT_DOUBLE_EQ(JoinCount(example.instance), 112.0);
}

TEST(Theorem16PathTest, ConstructionInvariants) {
  const std::vector<int64_t> table = {2, 1};
  auto built = MakeTheorem16PathInstance(table, 2, 3);
  ASSERT_TRUE(built.ok());
  // Join size = side²·ΣT = 9·3 = 27.
  EXPECT_DOUBLE_EQ(JoinCount(built->instance), 27.0);
  // LS = side² = 9 (adding an R1 diagonal tuple completes side² rows).
  EXPECT_DOUBLE_EQ(LocalSensitivity(built->instance), 9.0);
  EXPECT_EQ(built->instance.query().num_relations(), 3);
}

TEST(Theorem16PathTest, RejectsBadInput) {
  EXPECT_FALSE(MakeTheorem16PathInstance({}, 2, 2).ok());
  EXPECT_FALSE(MakeTheorem16PathInstance({3}, 2, 2).ok());
}

}  // namespace
}  // namespace dpjoin
