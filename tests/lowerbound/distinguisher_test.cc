#include "lowerbound/distinguisher.h"

#include <gtest/gtest.h>

#include "dp/laplace.h"
#include "lowerbound/hard_instances.h"
#include "relational/join.h"

namespace dpjoin {
namespace {

TEST(DistinguisherTest, EpsilonBoundZeroWhenIndistinguishable) {
  EXPECT_DOUBLE_EQ(EmpiricalEpsilonLowerBound(0.5, 0.5, 1e-5, 100), 0.0);
  EXPECT_DOUBLE_EQ(EmpiricalEpsilonLowerBound(0.0, 0.0, 1e-5, 100), 0.0);
}

TEST(DistinguisherTest, EpsilonBoundLargeWhenSeparated) {
  const double eps = EmpiricalEpsilonLowerBound(1.0, 0.0, 1e-5, 100);
  // p′ floored at 1/101 ⇒ ε ≈ ln(101) ≈ 4.6.
  EXPECT_NEAR(eps, std::log(101.0 * (1.0 - 1e-5)), 0.01);
}

TEST(DistinguisherTest, EpsilonBoundSymmetric) {
  EXPECT_DOUBLE_EQ(EmpiricalEpsilonLowerBound(0.1, 0.9, 1e-6, 1000),
                   EmpiricalEpsilonLowerBound(0.9, 0.1, 1e-6, 1000));
}

TEST(DistinguisherTest, EpsilonBoundCapped) {
  EXPECT_LE(EmpiricalEpsilonLowerBound(1.0, 0.0, 0.0, 1000000000), 20.0);
  // Floored p′ = 1/11 gives ln(11) ≈ 2.4 (no cap hit)...
  EXPECT_NEAR(EmpiricalEpsilonLowerBound(1.0, 0.0, 0.0, 10, 5.0),
              std::log(11.0), 1e-9);
  // ... and a tiny cap clips it.
  EXPECT_DOUBLE_EQ(EmpiricalEpsilonLowerBound(1.0, 0.0, 0.0, 10, 1.0), 1.0);
}

TEST(DistinguisherTest, DeltaSubtractedFromNumerator) {
  // With δ ≥ p the bound collapses to 0.
  EXPECT_DOUBLE_EQ(EmpiricalEpsilonLowerBound(0.01, 0.0, 0.02, 100), 0.0);
}

TEST(DistinguisherTest, LaplaceCountMechanismLooksPrivate) {
  // A genuinely DP statistic — count + Lap(Δ/ε) — must NOT register a large
  // empirical ε on the Figure-1 pair.
  const Figure1Pair pair = MakeFigure1Pair(8);
  const double eps = 1.0;
  const MechanismStatistic statistic = [&](const Instance& instance,
                                           Rng& rng) {
    // Sensitivity of count on this pair's neighborhood is Δ = 8.
    return AddLaplaceNoise(JoinCount(instance), 8.0, eps, rng);
  };
  Rng rng(9);
  const DistinguisherResult verdict = DistinguishByThreshold(
      statistic, pair.instance, pair.neighbor, /*threshold=*/4.0,
      /*trials=*/400, 1e-5, rng);
  // Noise scale 8 vs gap 8: distributions overlap heavily.
  EXPECT_LT(verdict.empirical_epsilon, 1.6);
}

TEST(DistinguisherTest, UnmaskedCountIsFlagged) {
  const Figure1Pair pair = MakeFigure1Pair(8);
  const MechanismStatistic statistic = [](const Instance& instance, Rng&) {
    return JoinCount(instance);  // no noise at all
  };
  Rng rng(10);
  const DistinguisherResult verdict = DistinguishByThreshold(
      statistic, pair.instance, pair.neighbor, 4.0, 50, 1e-5, rng);
  EXPECT_DOUBLE_EQ(verdict.p_event, 1.0);
  EXPECT_DOUBLE_EQ(verdict.p_event_prime, 0.0);
  EXPECT_GT(verdict.empirical_epsilon, 3.0);
}

}  // namespace
}  // namespace dpjoin
