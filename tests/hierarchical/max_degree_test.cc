#include "hierarchical/max_degree.h"

#include <gtest/gtest.h>

#include "testing/brute_force.h"
#include "testing/queries.h"

namespace dpjoin {
namespace {

TEST(MaxDegreeTest, SingleRelationDegreeIsWeightedCount) {
  const JoinQuery query = testing::MakeSmallStarQuery(3, 3, 3);
  Instance instance = Instance::Make(query);
  ASSERT_TRUE(instance.AddTuple(0, {0, 0}, 2).ok());
  ASSERT_TRUE(instance.AddTuple(0, {0, 1}, 3).ok());
  ASSERT_TRUE(instance.AddTuple(0, {1, 2}, 1).ok());
  const int a = query.AttributeIndex("A").value();
  const auto degrees =
      HierDegreeMap(instance, RelationSet::Of(0), AttributeSet::Of(a));
  EXPECT_EQ(degrees.at(0), 5);  // frequencies add up (Def 4.7 case |E|=1)
  EXPECT_EQ(degrees.at(1), 1);
  EXPECT_EQ(MaxHierDegree(instance, RelationSet::Of(0), AttributeSet::Of(a)),
            5);
}

TEST(MaxDegreeTest, MultiRelationDegreeCountsDistinctProjections) {
  // E = {R1, R2} over star R1(A,B), R2(A,C): ∧E = {A}; Ψ_E = A-values with
  // a joining pair; deg over y = ∅ counts |Ψ_E|.
  const JoinQuery query = testing::MakeSmallStarQuery(4, 3, 3);
  Instance instance = Instance::Make(query);
  // A=0 joins (2 B-partners × 1 C-partner), A=1 joins, A=2 has R1 only.
  ASSERT_TRUE(instance.AddTuple(0, {0, 0}, 1).ok());
  ASSERT_TRUE(instance.AddTuple(0, {0, 1}, 5).ok());
  ASSERT_TRUE(instance.AddTuple(1, {0, 2}, 7).ok());
  ASSERT_TRUE(instance.AddTuple(0, {1, 0}, 1).ok());
  ASSERT_TRUE(instance.AddTuple(1, {1, 0}, 1).ok());
  ASSERT_TRUE(instance.AddTuple(0, {2, 0}, 1).ok());
  const RelationSet both = RelationSet::FromElements({0, 1});
  const auto degrees = HierDegreeMap(instance, both, AttributeSet());
  ASSERT_EQ(degrees.size(), 1u);
  // Distinct joining A-values: {0, 1} — multiplicities do NOT count.
  EXPECT_EQ(degrees.at(0), 2);
}

TEST(MaxDegreeTest, DegreePerAncestorValue) {
  const JoinQuery query = testing::MakeSmallStarQuery(4, 3, 3);
  Instance instance = Instance::Make(query);
  ASSERT_TRUE(instance.AddTuple(0, {0, 0}, 1).ok());
  ASSERT_TRUE(instance.AddTuple(0, {0, 1}, 1).ok());
  ASSERT_TRUE(instance.AddTuple(0, {1, 2}, 9).ok());
  const int a = query.AttributeIndex("A").value();
  // deg_{R1, {A}}: per A-value weighted counts: A=0 → 2, A=1 → 9.
  const auto degrees =
      HierDegreeMap(instance, RelationSet::Of(0), AttributeSet::Of(a));
  EXPECT_EQ(degrees.at(0), 2);
  EXPECT_EQ(degrees.at(1), 9);
}

TEST(MaxDegreeTest, Figure4UpperBoundChainDegrees) {
  // The Figure 4 caption: T_{345} ≤ mdeg_5(A)·mdeg_{34}(AB)·mdeg_3(ABG)·
  // mdeg_4(ABG). Exercise each mdeg on a concrete instance.
  const JoinQuery query = testing::MakeFigure4Query(3);
  Instance instance = Instance::Make(query);
  const int a = query.AttributeIndex("A").value();
  const int b = query.AttributeIndex("B").value();
  const int g = query.AttributeIndex("G").value();
  // R3(A,B,G,K), R4(A,B,G,L), R5(A,C) — 0-based relations 2, 3, 4.
  ASSERT_TRUE(instance.AddTuple(2, {0, 0, 0, 0}, 1).ok());
  ASSERT_TRUE(instance.AddTuple(2, {0, 0, 0, 1}, 1).ok());
  ASSERT_TRUE(instance.AddTuple(2, {0, 0, 1, 0}, 1).ok());
  ASSERT_TRUE(instance.AddTuple(3, {0, 0, 0, 2}, 1).ok());
  ASSERT_TRUE(instance.AddTuple(3, {0, 0, 1, 1}, 1).ok());
  ASSERT_TRUE(instance.AddTuple(4, {0, 1}, 4).ok());
  ASSERT_TRUE(instance.AddTuple(4, {1, 2}, 1).ok());

  // mdeg_5(A): weighted degree of R5 over A = max(4, 1).
  EXPECT_EQ(MaxHierDegree(instance, RelationSet::Of(4), AttributeSet::Of(a)),
            4);
  // mdeg_{34}({A,B}): distinct ∧{3,4}-projections ({A,B,G}-values) joining
  // R3 ⋈ R4 per (A,B): G ∈ {0,1} join on both → 2.
  EXPECT_EQ(MaxHierDegree(instance, RelationSet::FromElements({2, 3}),
                          AttributeSet::FromElements({a, b})),
            2);
  // mdeg_3({A,B,G}): weighted degree of R3 per (A,B,G): (0,0,0) has 2.
  EXPECT_EQ(MaxHierDegree(instance, RelationSet::Of(2),
                          AttributeSet::FromElements({a, b, g})),
            2);
}

TEST(MaxDegreeTest, EmptyDataGivesZero) {
  const JoinQuery query = testing::MakeSmallStarQuery(3, 3, 3);
  const Instance instance = Instance::Make(query);
  EXPECT_EQ(MaxHierDegree(instance, RelationSet::FromElements({0, 1}),
                          AttributeSet()),
            0);
}

TEST(MaxDegreeDeathTest, RequiresValidYSets) {
  const JoinQuery query = testing::MakeSmallStarQuery(3, 3, 3);
  const Instance instance = Instance::Make(query);
  const int b = query.AttributeIndex("B").value();
  // y = {B} is not ⊆ ∧{R1,R2} = {A}.
  EXPECT_DEATH((void)HierDegreeMap(instance, RelationSet::FromElements({0, 1}),
                                   AttributeSet::Of(b)),
               "");
  EXPECT_DEATH((void)HierDegreeMap(instance, RelationSet(), AttributeSet()),
               "empty");
}

}  // namespace
}  // namespace dpjoin
