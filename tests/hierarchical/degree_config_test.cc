#include "hierarchical/degree_config.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sensitivity/residual_sensitivity.h"
#include "testing/queries.h"

namespace dpjoin {
namespace {

DegreeConfiguration MakeConfig(const JoinQuery& query,
                               std::vector<int> buckets) {
  DegreeConfiguration config;
  config.buckets = std::move(buckets);
  EXPECT_EQ(static_cast<int>(config.buckets.size()), query.num_attributes());
  return config;
}

TEST(DegreeConfigTest, ToStringListsAssignedAttributes) {
  const JoinQuery query = testing::MakeSmallStarQuery(3, 3, 3);
  const DegreeConfiguration config = MakeConfig(query, {2, 1, 0});
  const std::string s = config.ToString(query);
  EXPECT_NE(s.find("A→2"), std::string::npos);
  EXPECT_NE(s.find("B→1"), std::string::npos);
  EXPECT_EQ(s.find("C"), std::string::npos);  // unassigned omitted
}

TEST(DegreeConfigTest, BoundaryBoundsAreBucketCeilingProducts) {
  // Star R1(A,B), R2(A,C); tree A → {B, C}. Factors: T_{R1} ↔ attribute B
  // (atom {R1}, ancestors {A}); T_{R2} ↔ C.
  const JoinQuery query = testing::MakeSmallStarQuery(3, 3, 3);
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const double lambda = 2.0;
  const DegreeConfiguration config = MakeConfig(query, {1, 2, 3});
  auto bounds = ConfigBoundaryBounds(query, *tree, config, lambda);
  ASSERT_TRUE(bounds.ok());
  // T_∅ = 1.
  EXPECT_DOUBLE_EQ(bounds->at(0), 1.0);
  // T_{R1} bound = λ·2^{σ(B)} = 2·4 = 8 (bit 0 = relation 0).
  EXPECT_DOUBLE_EQ(bounds->at(1), 8.0);
  // T_{R2} bound = λ·2^{σ(C)} = 2·8 = 16.
  EXPECT_DOUBLE_EQ(bounds->at(2), 16.0);
}

TEST(DegreeConfigTest, UncoveredAttributeFails) {
  const JoinQuery query = testing::MakeSmallStarQuery(3, 3, 3);
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  // B unassigned (0 = ⊥) but needed as a factor of T_{R1}.
  const DegreeConfiguration config = MakeConfig(query, {1, 0, 1});
  auto bounds = ConfigBoundaryBounds(query, *tree, config, 2.0);
  EXPECT_TRUE(bounds.status().IsFailedPrecondition());
}

TEST(DegreeConfigTest, ConfigRsMatchesManualResidualComputation) {
  const JoinQuery query = testing::MakeSmallStarQuery(3, 3, 3);
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const double lambda = 2.0, beta = 0.5;
  const DegreeConfiguration config = MakeConfig(query, {1, 2, 2});
  auto bounds = ConfigBoundaryBounds(query, *tree, config, lambda);
  ASSERT_TRUE(bounds.ok());
  auto rs = ConfigResidualSensitivity(query, *tree, config, lambda, beta);
  ASSERT_TRUE(rs.ok());
  EXPECT_DOUBLE_EQ(
      *rs, ResidualSensitivityFromBoundaries(query, *bounds, beta).value);
  // Monotone: raising a bucket can only raise RS^σ.
  const DegreeConfiguration higher = MakeConfig(query, {1, 3, 2});
  auto rs_higher =
      ConfigResidualSensitivity(query, *tree, higher, lambda, beta);
  ASSERT_TRUE(rs_higher.ok());
  EXPECT_GE(*rs_higher, *rs - 1e-9);
}

TEST(DegreeConfigTest, ConfigRsAtLeastBucketCeiling) {
  // RS^σ ≥ LŜ^0 under σ = max_i T^σ_{[m]∖{i}} — for the star that is the
  // larger of the two bucket ceilings.
  const JoinQuery query = testing::MakeSmallStarQuery(3, 3, 3);
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const double lambda = 2.0, beta = 0.5;
  const DegreeConfiguration config = MakeConfig(query, {1, 2, 4});
  auto rs = ConfigResidualSensitivity(query, *tree, config, lambda, beta);
  ASSERT_TRUE(rs.ok());
  EXPECT_GE(*rs, lambda * std::pow(2.0, 4) - 1e-9);  // C's ceiling: 2·16
}

}  // namespace
}  // namespace dpjoin
