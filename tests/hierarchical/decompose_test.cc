#include "hierarchical/decompose.h"

#include <gtest/gtest.h>

#include "hierarchical/max_degree.h"
#include "relational/join.h"
#include "testing/brute_force.h"
#include "testing/queries.h"

namespace dpjoin {
namespace {

const PrivacyParams kParams(1.0, 1e-4);

TEST(DecomposeTest, JoinResultsPartitioned) {
  // Lemma 4.10 property 1: per-bucket join functions are disjoint and sum to
  // the original (relations of E split; others shared).
  Rng rng(1);
  const JoinQuery query = testing::MakeSmallStarQuery(4, 4, 4);
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const Instance instance = testing::RandomInstance(query, 20, rng);
  const int b = query.AttributeIndex("B").value();
  auto buckets = Decompose(instance, *tree, b, kParams, 2.0, rng);
  ASSERT_TRUE(buckets.ok());
  double total = 0.0;
  for (const auto& bucket : *buckets) {
    total += JoinCount(bucket.sub_instance);
  }
  EXPECT_DOUBLE_EQ(total, JoinCount(instance));
}

TEST(DecomposeTest, OnlyAtomRelationsAreSplit) {
  Rng rng(2);
  const JoinQuery query = testing::MakeSmallStarQuery(4, 4, 4);
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const Instance instance = testing::RandomInstance(query, 15, rng);
  const int b = query.AttributeIndex("B").value();  // atom(B) = {R1}
  auto buckets = Decompose(instance, *tree, b, kParams, 2.0, rng);
  ASSERT_TRUE(buckets.ok());
  for (const auto& bucket : *buckets) {
    // R2 (outside atom(B)) is shared verbatim.
    EXPECT_EQ(bucket.sub_instance.relation(1).TotalFrequency(),
              instance.relation(1).TotalFrequency());
  }
  // R1's tuples are split without loss.
  int64_t r1_total = 0;
  for (const auto& bucket : *buckets) {
    r1_total += bucket.sub_instance.relation(0).TotalFrequency();
  }
  EXPECT_EQ(r1_total, instance.relation(0).TotalFrequency());
}

TEST(DecomposeTest, RootAttributeGivesSingleBucket) {
  // x = A (root): y = ∅, a single degree value ⇒ one bucket holding all.
  Rng rng(3);
  const JoinQuery query = testing::MakeSmallStarQuery(4, 4, 4);
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const Instance instance = testing::RandomInstance(query, 10, rng);
  const int a = query.AttributeIndex("A").value();
  auto buckets = Decompose(instance, *tree, a, kParams, 2.0, rng);
  ASSERT_TRUE(buckets.ok());
  EXPECT_EQ(buckets->size(), 1u);
  EXPECT_EQ((*buckets)[0].sub_instance.InputSize(), instance.InputSize());
}

TEST(DecomposeTest, BucketsGroupSimilarDegrees) {
  // Lemma 4.10 property 3 (within noise): in each bucket, true degrees are
  // within a factor ~2 of the bucket ceiling, modulo the +2τ noise shift.
  const JoinQuery query = testing::MakeSmallStarQuery(12, 32, 4);
  Instance instance = Instance::Make(query);
  // A-values with R1-degrees 1, 1, 2, 16, 16, 17 (B-partners distinct).
  const std::vector<int64_t> degrees = {1, 1, 2, 16, 16, 17};
  for (size_t a = 0; a < degrees.size(); ++a) {
    for (int64_t j = 0; j < degrees[a]; ++j) {
      ASSERT_TRUE(
          instance.AddTuple(0, {static_cast<int64_t>(a), j}, 1).ok());
    }
    ASSERT_TRUE(instance.AddTuple(1, {static_cast<int64_t>(a), 0}, 1).ok());
  }
  Rng rng(4);
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const int b = query.AttributeIndex("B").value();
  const double lambda = 1.0;
  auto buckets = Decompose(instance, *tree, b, kParams, lambda, rng);
  ASSERT_TRUE(buckets.ok());
  ASSERT_GE(buckets->size(), 2u);
  const int a_attr = query.AttributeIndex("A").value();
  for (const auto& bucket : *buckets) {
    const auto bucket_degrees = HierDegreeMap(
        bucket.sub_instance, RelationSet::Of(0), AttributeSet::Of(a_attr));
    const double ceiling =
        lambda * std::pow(2.0, static_cast<double>(bucket.bucket_index));
    for (const auto& [value, deg] : bucket_degrees) {
      (void)value;
      // True degree ≤ noisy degree ≤ ceiling.
      EXPECT_LE(static_cast<double>(deg), ceiling + 1e-9);
    }
  }
  // Degree-16 and degree-1 values must land in different buckets (the noise
  // 2τ(1, 1e-4, 1) ≈ 2·9.2 can shift a level, but 1 vs 16 splits anyway
  // given the ≥ 8× gap... verify at least two distinct bucket indices).
  EXPECT_NE(buckets->front().bucket_index, buckets->back().bucket_index);
}

TEST(DecomposeTest, RejectsBadAttribute) {
  Rng rng(5);
  const JoinQuery query = testing::MakeSmallStarQuery(3, 3, 3);
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const Instance instance = Instance::Make(query);
  EXPECT_TRUE(Decompose(instance, *tree, 99, kParams, 1.0, rng)
                  .status()
                  .IsOutOfRange());
}

TEST(DecomposeTest, EmptyInstanceNoBuckets) {
  Rng rng(6);
  const JoinQuery query = testing::MakeSmallStarQuery(3, 3, 3);
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const Instance instance = Instance::Make(query);
  const int b = query.AttributeIndex("B").value();
  auto buckets = Decompose(instance, *tree, b, kParams, 1.0, rng);
  ASSERT_TRUE(buckets.ok());
  EXPECT_TRUE(buckets->empty());
}

}  // namespace
}  // namespace dpjoin
