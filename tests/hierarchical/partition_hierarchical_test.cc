#include "hierarchical/partition_hierarchical.h"

#include <gtest/gtest.h>

#include "relational/join.h"
#include "testing/brute_force.h"
#include "testing/queries.h"

namespace dpjoin {
namespace {

const PrivacyParams kParams(1.0, 1e-4);

TEST(PartitionHierarchicalTest, JoinPartitionedAcrossSubInstances) {
  // Lemma 4.10 property 1 at the full-partition level.
  Rng rng(1);
  const JoinQuery query = testing::MakeSmallStarQuery(4, 4, 4);
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const Instance instance = testing::RandomInstance(query, 20, rng);
  auto partition =
      PartitionHierarchical(instance, *tree, kParams, 2.0, rng);
  ASSERT_TRUE(partition.ok());
  double total = 0.0;
  for (const auto& entry : partition->sub_instances) {
    total += JoinCount(entry.sub_instance);
  }
  EXPECT_DOUBLE_EQ(total, JoinCount(instance));
}

TEST(PartitionHierarchicalTest, ConfigsAreDistinctAndComplete) {
  Rng rng(2);
  const JoinQuery query = testing::MakeSmallStarQuery(6, 8, 4);
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const Instance instance = testing::RandomInstance(query, 30, rng);
  auto partition =
      PartitionHierarchical(instance, *tree, kParams, 1.0, rng);
  ASSERT_TRUE(partition.ok());
  std::set<std::vector<int>> seen;
  for (const auto& entry : partition->sub_instances) {
    // Every attribute is assigned a bucket (σ covers all pairs).
    for (int bucket : entry.config.buckets) EXPECT_GE(bucket, 1);
    EXPECT_TRUE(seen.insert(entry.config.buckets).second)
        << "duplicate degree configuration";
  }
}

TEST(PartitionHierarchicalTest, ParticipationBoundedByLogPower) {
  // Lemma 4.10 property 2: measured participation ≤ ℓ^{|x|}-ish; here we
  // check it is small and at least 1.
  Rng rng(3);
  const JoinQuery query = testing::MakeSmallStarQuery(5, 6, 6);
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const Instance instance = testing::RandomInstance(query, 25, rng);
  auto partition =
      PartitionHierarchical(instance, *tree, kParams, 1.0, rng);
  ASSERT_TRUE(partition.ok());
  EXPECT_GE(partition->max_participation, 1);
  // 3 attributes, ℓ ≤ log2(25) + slack: generous cap.
  EXPECT_LE(partition->max_participation, 64);
}

TEST(PartitionHierarchicalTest, TupleDisjointWithinDecomposedRelation) {
  // For the small star, R1 is decomposed by both A and B, R2 by A and C —
  // after the full pass each ORIGINAL tuple of R1 appears in exactly the
  // sub-instances whose configs match its degree buckets; total frequency
  // across sub-instances is a multiple of its own (shared relations repeat).
  Rng rng(4);
  const JoinQuery query = testing::MakeSmallStarQuery(4, 4, 4);
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const Instance instance = testing::RandomInstance(query, 12, rng);
  auto partition =
      PartitionHierarchical(instance, *tree, kParams, 2.0, rng);
  ASSERT_TRUE(partition.ok());
  for (int rel = 0; rel < 2; ++rel) {
    for (const auto& [code, freq] : instance.relation(rel).entries()) {
      for (const auto& entry : partition->sub_instances) {
        const int64_t f = entry.sub_instance.relation(rel).Frequency(code);
        EXPECT_TRUE(f == 0 || f == freq)
            << "sub-instance must keep full frequency or none";
      }
    }
  }
}

TEST(PartitionHierarchicalTest, CapEnforced) {
  Rng rng(5);
  const JoinQuery query = testing::MakeSmallStarQuery(8, 8, 8);
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const Instance instance = testing::RandomInstance(query, 64, rng);
  auto partition = PartitionHierarchical(instance, *tree, kParams, 0.5, rng,
                                         /*max_sub_instances=*/1);
  EXPECT_TRUE(partition.status().IsFailedPrecondition());
}

TEST(PartitionHierarchicalTest, Figure4QueryPartitions) {
  Rng rng(6);
  const JoinQuery query = testing::MakeFigure4Query(2);
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const Instance instance = testing::RandomInstance(query, 6, rng);
  auto partition =
      PartitionHierarchical(instance, *tree, kParams, 2.0, rng);
  ASSERT_TRUE(partition.ok());
  EXPECT_GE(partition->sub_instances.size(), 1u);
  double total = 0.0;
  for (const auto& entry : partition->sub_instances) {
    total += JoinCount(entry.sub_instance);
  }
  EXPECT_DOUBLE_EQ(total, JoinCount(instance));
}

}  // namespace
}  // namespace dpjoin
