#include "hierarchical/q_aggregate_bound.h"

#include <gtest/gtest.h>

#include "relational/generators.h"
#include "relational/join.h"
#include "testing/brute_force.h"
#include "testing/queries.h"

namespace dpjoin {
namespace {

TEST(QAggregateBoundTest, NonHierarchicalRejected) {
  const JoinQuery query = MakePathQuery(3, 2);
  // Build fails already at the tree stage.
  EXPECT_FALSE(AttributeTree::Build(query).ok());
}

TEST(QAggregateBoundTest, SingleRelationFactorIsItself) {
  const JoinQuery query = testing::MakeSmallStarQuery(3, 3, 3);
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  auto structure = BoundaryBoundFactors(query, *tree, RelationSet::Of(0));
  ASSERT_TRUE(structure.ok());
  // T_{R1} with ∂ = {A}: single mdeg factor E={R1}, matched to attribute B
  // (atom(B) = {R1}, ancestors(B) = {A}).
  ASSERT_EQ(structure->factors.size(), 1u);
  EXPECT_EQ(structure->factors[0].rels, RelationSet::Of(0));
  EXPECT_EQ(structure->factors[0].attribute,
            query.AttributeIndex("B").value());
}

TEST(QAggregateBoundTest, Figure4CaptionFactorization) {
  // Figure 4 caption: T_{345} ≤ mdeg_5(A)·mdeg_{34}(AB)·mdeg_3(ABG)·
  // mdeg_4(ABG) — i.e. factors correspond to attributes C, G, K, L.
  const JoinQuery query = testing::MakeFigure4Query();
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const RelationSet e345 = RelationSet::FromElements({2, 3, 4});
  auto structure = BoundaryBoundFactors(query, *tree, e345);
  ASSERT_TRUE(structure.ok());
  std::vector<int> factor_attrs;
  for (const auto& factor : structure->factors) {
    factor_attrs.push_back(factor.attribute);
  }
  std::sort(factor_attrs.begin(), factor_attrs.end());
  const std::vector<int> expected = {
      query.AttributeIndex("C").value(), query.AttributeIndex("G").value(),
      query.AttributeIndex("K").value(), query.AttributeIndex("L").value()};
  EXPECT_EQ(factor_attrs, expected);
}

TEST(QAggregateBoundTest, EveryFactorMatchesLemma48Structure) {
  // Lemma 4.8: each factor has E' = atom(x) and y' = ancestors of x.
  const JoinQuery query = testing::MakeFigure4Query();
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const int m = query.num_relations();
  for (uint64_t bits = 1; bits + 1 < (uint64_t{1} << m); ++bits) {
    RelationSet set;
    for (int r = 0; r < m; ++r) {
      if ((bits >> r) & 1) set.Insert(r);
    }
    auto structure = BoundaryBoundFactors(query, *tree, set);
    ASSERT_TRUE(structure.ok()) << set.ToString();
    for (const auto& factor : structure->factors) {
      ASSERT_GE(factor.attribute, 0) << "unmatched factor for E = "
                                     << set.ToString();
      EXPECT_EQ(query.Atom(factor.attribute), factor.rels);
      EXPECT_EQ(tree->ProperAncestors(factor.attribute), factor.y);
    }
  }
}

struct BoundParam {
  const char* name;
  int64_t tuples;
  uint64_t seed;
};

class QAggregateBoundOracleTest
    : public ::testing::TestWithParam<BoundParam> {};

TEST_P(QAggregateBoundOracleTest, BoundDominatesExactTE) {
  // §4.2.1's whole point: the mdeg product upper bounds T_E, for every
  // E ⊊ [m], on random data.
  const BoundParam& param = GetParam();
  Rng rng(param.seed);
  const JoinQuery query = testing::MakeFigure4Query(2);
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const Instance instance =
      testing::RandomInstance(query, param.tuples, rng);
  const int m = query.num_relations();
  for (uint64_t bits = 1; bits + 1 < (uint64_t{1} << m); ++bits) {
    RelationSet set;
    for (int r = 0; r < m; ++r) {
      if ((bits >> r) & 1) set.Insert(r);
    }
    auto structure = BoundaryBoundFactors(query, *tree, set);
    ASSERT_TRUE(structure.ok());
    const double bound = EvaluateQAggregateBound(instance, *structure);
    const double exact = BoundaryQuery(instance, set);
    EXPECT_GE(bound, exact - 1e-9)
        << "E = " << set.ToString() << " bound " << bound << " exact "
        << exact;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, QAggregateBoundOracleTest,
    ::testing::Values(BoundParam{"sparse", 3, 601},
                      BoundParam{"medium", 8, 602},
                      BoundParam{"dense", 16, 603}),
    [](const ::testing::TestParamInfo<BoundParam>& info) {
      return info.param.name;
    });

TEST(QAggregateBoundTest, StarQueryBoundExactOnUniformData) {
  // For the small star with single-attribute overlap, T_{R1} = mdeg_B
  // exactly (case 1), so the bound is tight.
  const JoinQuery query = testing::MakeSmallStarQuery(3, 3, 3);
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  Rng rng(604);
  const Instance instance = testing::RandomInstance(query, 9, rng);
  auto structure = BoundaryBoundFactors(query, *tree, RelationSet::Of(0));
  ASSERT_TRUE(structure.ok());
  EXPECT_DOUBLE_EQ(EvaluateQAggregateBound(instance, *structure),
                   BoundaryQuery(instance, RelationSet::Of(0)));
}

}  // namespace
}  // namespace dpjoin
