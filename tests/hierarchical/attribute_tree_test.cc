#include "hierarchical/attribute_tree.h"

#include <gtest/gtest.h>

#include "testing/queries.h"

namespace dpjoin {
namespace {

TEST(AttributeTreeTest, RejectsNonHierarchicalQueries) {
  EXPECT_TRUE(AttributeTree::Build(MakePathQuery(3, 2))
                  .status()
                  .IsInvalidArgument());
}

TEST(AttributeTreeTest, Figure4Shape) {
  const JoinQuery query = testing::MakeFigure4Query();
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const int a = query.AttributeIndex("A").value();
  const int b = query.AttributeIndex("B").value();
  const int c = query.AttributeIndex("C").value();
  const int d = query.AttributeIndex("D").value();
  const int f = query.AttributeIndex("F").value();
  const int g = query.AttributeIndex("G").value();
  const int k = query.AttributeIndex("K").value();
  const int l = query.AttributeIndex("L").value();

  // Figure 4 (left): A at the root; children B and C; B's children D, F, G;
  // G's children K, L.
  EXPECT_EQ(tree->Parent(a), -1);
  EXPECT_EQ(tree->Roots(), (std::vector<int>{a}));
  EXPECT_EQ(tree->Parent(b), a);
  EXPECT_EQ(tree->Parent(c), a);
  EXPECT_EQ(tree->Parent(d), b);
  EXPECT_EQ(tree->Parent(f), b);
  EXPECT_EQ(tree->Parent(g), b);
  EXPECT_EQ(tree->Parent(k), g);
  EXPECT_EQ(tree->Parent(l), g);
}

TEST(AttributeTreeTest, Figure4AncestorsAndPostOrder) {
  const JoinQuery query = testing::MakeFigure4Query();
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const int a = query.AttributeIndex("A").value();
  const int b = query.AttributeIndex("B").value();
  const int g = query.AttributeIndex("G").value();
  const int k = query.AttributeIndex("K").value();

  EXPECT_EQ(tree->TreeAncestors(k), AttributeSet::FromElements({a, b, g}));
  EXPECT_EQ(tree->ProperAncestors(k), AttributeSet::FromElements({a, b, g}));
  EXPECT_TRUE(tree->TreeAncestors(a).Empty());

  // Post-order: every node after all its descendants.
  const auto& order = tree->PostOrder();
  ASSERT_EQ(order.size(), 8u);
  std::vector<int> position(8);
  for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (int attr = 0; attr < 8; ++attr) {
    const int parent = tree->Parent(attr);
    if (parent >= 0) {
      EXPECT_LT(position[attr], position[parent]);
    }
  }
  EXPECT_EQ(order.back(), a);  // root last
}

TEST(AttributeTreeTest, TwoTableTreeIsBOverAAndC) {
  // Two-table R1(A,B), R2(B,C): atom(B) = {1,2} ⊋ atom(A), atom(C); so B is
  // the root with A and C as children.
  const JoinQuery query = MakeTwoTableQuery(2, 2, 2);
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const int a = 0, b = 1, c = 2;
  EXPECT_EQ(tree->Parent(b), -1);
  EXPECT_EQ(tree->Parent(a), b);
  EXPECT_EQ(tree->Parent(c), b);
  EXPECT_EQ(tree->Children(b), (std::vector<int>{a, c}));
}

TEST(AttributeTreeTest, EqualAtomsChainByIndex) {
  // R1(A,B): atom(A) = atom(B) = {1} — equal atoms chain A → B.
  auto query = JoinQuery::Create({{"A", 2}, {"B", 2}}, {{"A", "B"}});
  ASSERT_TRUE(query.ok());
  auto tree = AttributeTree::Build(*query);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Parent(0), -1);
  EXPECT_EQ(tree->Parent(1), 0);
  // Proper ancestors use STRICT atom inclusion, so B has none.
  EXPECT_TRUE(tree->ProperAncestors(1).Empty());
  EXPECT_EQ(tree->TreeAncestors(1), AttributeSet::Of(0));
}

TEST(AttributeTreeTest, ForestWhenRelationsDisjoint) {
  auto query = JoinQuery::Create({{"A", 2}, {"B", 2}}, {{"A"}, {"B"}});
  ASSERT_TRUE(query.ok());
  auto tree = AttributeTree::Build(*query);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Roots().size(), 2u);
}

TEST(AttributeTreeTest, ToStringRendersEveryAttribute) {
  const JoinQuery query = testing::MakeFigure4Query();
  auto tree = AttributeTree::Build(query);
  ASSERT_TRUE(tree.ok());
  const std::string rendered = tree->ToString(query);
  for (const char* name : {"A", "B", "C", "D", "F", "G", "K", "L"}) {
    EXPECT_NE(rendered.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace dpjoin
