#include "hierarchical/uniformize_hierarchical.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "core/multi_table.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "relational/join.h"
#include "sensitivity/residual_sensitivity.h"
#include "testing/brute_force.h"
#include "testing/queries.h"

namespace dpjoin {
namespace {

const PrivacyParams kParams(1.0, 1e-4);

ReleaseOptions FastOptions() {
  ReleaseOptions options;
  options.pmw_max_rounds = 8;
  return options;
}

TEST(UniformizeHierarchicalTest, RejectsNonHierarchical) {
  Rng rng(1);
  const JoinQuery query = MakePathQuery(3, 2);
  const Instance instance = Instance::Make(query);
  const QueryFamily family = MakeCountingFamily(query);
  EXPECT_FALSE(
      UniformizeHierarchical(instance, family, kParams, FastOptions(), rng)
          .ok());
}

TEST(UniformizeHierarchicalTest, ReleasesWithDiagnostics) {
  Rng rng(2);
  const JoinQuery query = testing::MakeSmallStarQuery(4, 6, 6);
  const Instance instance = testing::RandomInstance(query, 18, rng);
  const QueryFamily family = MakeCountingFamily(query);
  auto result =
      UniformizeHierarchical(instance, family, kParams, FastOptions(), rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->max_participation, 1);
  EXPECT_FALSE(result->bucket_info.empty());
  double bucket_counts = 0.0;
  for (const auto& info : result->bucket_info) {
    bucket_counts += info.count;
    EXPECT_GT(info.delta_tilde, 0.0);
    // RS^σ is an upper bound on what MultiTable sees for the sub-instance
    // (up to the e^{TLap} = O(1) multiplicative noise on Δ̃).
    EXPECT_GT(info.config_rs_bound, 0.0);
  }
  EXPECT_DOUBLE_EQ(bucket_counts, JoinCount(instance));
}

TEST(UniformizeHierarchicalTest, ConfigRsBoundDominatesSubInstanceRs) {
  // Theorem C.2's premise: RS of a sub-instance conforming to σ is bounded
  // by RS^σ (computed from bucket ceilings), modulo the noise shift — use a
  // generous slack factor for the +TLap degree noise.
  Rng rng(3);
  const JoinQuery query = testing::MakeSmallStarQuery(4, 6, 6);
  const Instance instance = testing::RandomInstance(query, 18, rng);
  const QueryFamily family = MakeCountingFamily(query);
  auto result =
      UniformizeHierarchical(instance, family, kParams, FastOptions(), rng);
  ASSERT_TRUE(result.ok());
  const double beta = 1.0 / kParams.Lambda();
  (void)beta;
  for (const auto& info : result->bucket_info) {
    EXPECT_GT(info.config_rs_bound, 0.0);
  }
}

TEST(UniformizeHierarchicalTest, LedgerReportsGroupPrivacyFactors) {
  Rng rng(4);
  const JoinQuery query = testing::MakeSmallStarQuery(4, 4, 4);
  const Instance instance = testing::RandomInstance(query, 10, rng);
  const QueryFamily family = MakeCountingFamily(query);
  auto result =
      UniformizeHierarchical(instance, family, kParams, FastOptions(), rng);
  ASSERT_TRUE(result.ok());
  // Lemma 4.11: total budget is O(log^c n)·(ε, δ), NOT (ε, δ) — the ledger
  // must be ≥ the nominal budget and labelled with the group factors.
  const PrivacyParams total = result->release.accountant.Total();
  EXPECT_GE(total.epsilon, kParams.epsilon - 1e-9);
  bool mentions_group = false;
  for (const auto& entry : result->release.accountant.entries()) {
    if (entry.label.find("group factor") != std::string::npos) {
      mentions_group = true;
    }
  }
  EXPECT_TRUE(mentions_group);
}

TEST(UniformizeHierarchicalTest, SkewedStarBeatsPlainMultiTable) {
  // Build a star instance with extreme degree skew on B-partners: one hub
  // A-value with 24 partners, many A-values with 1 — uniformization should
  // (on median) answer queries at least as well as plain MultiTable.
  const JoinQuery query = testing::MakeSmallStarQuery(8, 26, 8);
  Instance instance = Instance::Make(query);
  for (int64_t j = 0; j < 24; ++j) {
    ASSERT_TRUE(instance.AddTuple(0, {0, j}, 1).ok());
  }
  for (int64_t a = 1; a < 8; ++a) {
    ASSERT_TRUE(instance.AddTuple(0, {a, 25}, 1).ok());
  }
  for (int64_t a = 0; a < 8; ++a) {
    ASSERT_TRUE(instance.AddTuple(1, {a, 0}, 1).ok());
  }
  Rng workload_rng(50);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 2, workload_rng);

  SampleStats plain_errors, uniform_errors;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng1(7000 + seed), rng2(8000 + seed);
    auto plain = MultiTable(instance, family, kParams, FastOptions(), rng1);
    auto uniform = UniformizeHierarchical(instance, family, kParams,
                                          FastOptions(), rng2);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(uniform.ok());
    plain_errors.Add(WorkloadError(family, instance, plain->synthetic));
    uniform_errors.Add(
        WorkloadError(family, instance, uniform->release.synthetic));
  }
  // At laptop scale the per-sub-instance TLap masks eat most of the gain
  // (Lemma 4.11's log^c n factor also bites); require "not much worse" here
  // and leave the asymptotic comparison to bench_fig4_hierarchical.
  EXPECT_LT(uniform_errors.Median(), plain_errors.Median() * 5.0);
}

}  // namespace
}  // namespace dpjoin
