#include "query/workloads.h"

#include <gtest/gtest.h>

#include "relational/join_query.h"

namespace dpjoin {
namespace {

TEST(WorkloadsTest, AllOnesQueryIsAllOnes) {
  const JoinQuery query = MakeTwoTableQuery(2, 3, 2);
  const TableQuery ones = MakeAllOnesQuery(query, 0);
  EXPECT_EQ(ones.values.size(), 6u);
  for (double v : ones.values) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(WorkloadsTest, RandomSignValuesAreSigns) {
  Rng rng(1);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const auto queries = MakeRandomSignQueries(query, 0, 5, rng);
  ASSERT_EQ(queries.size(), 6u);  // all-ones + 5
  for (size_t j = 1; j < queries.size(); ++j) {
    for (double v : queries[j].values) {
      EXPECT_TRUE(v == 1.0 || v == -1.0);
    }
  }
}

TEST(WorkloadsTest, RandomUniformValuesInRange) {
  Rng rng(2);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const auto queries = MakeRandomUniformQueries(query, 1, 4, rng);
  for (const auto& q : queries) {
    for (double v : q.values) {
      EXPECT_GE(v, -1.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(WorkloadsTest, PrefixQueriesAreNestedIndicators) {
  const JoinQuery query = MakeTwoTableQuery(2, 4, 2);
  const auto queries = MakePrefixQueries(query, 0, 4);
  ASSERT_EQ(queries.size(), 5u);
  // Each prefix is 0/1 valued, and later prefixes dominate earlier ones.
  for (size_t j = 1; j < queries.size(); ++j) {
    int64_t ones = 0;
    for (double v : queries[j].values) {
      EXPECT_TRUE(v == 0.0 || v == 1.0);
      ones += v == 1.0;
    }
    EXPECT_GT(ones, 0);
    if (j > 1) {
      for (size_t d = 0; d < queries[j].values.size(); ++d) {
        EXPECT_GE(queries[j].values[d], queries[j - 1].values[d]);
      }
    }
  }
  // Last prefix covers everything.
  for (double v : queries.back().values) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(WorkloadsTest, PointQueriesHaveSingleOne) {
  Rng rng(3);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const auto queries = MakePointQueries(query, 0, 6, rng);
  for (size_t j = 1; j < queries.size(); ++j) {
    double total = 0.0;
    for (double v : queries[j].values) total += v;
    EXPECT_DOUBLE_EQ(total, 1.0);
  }
}

TEST(WorkloadsTest, MarginalQueriesPartitionTheMass) {
  const JoinQuery query = MakeTwoTableQuery(3, 4, 2);
  const auto queries = MakeMarginalQueries(query, 0, /*attr=*/0);  // A
  ASSERT_EQ(queries.size(), 4u);  // ones + 3 marginals
  // Σ_v marginal_v = ones, cell-wise.
  for (size_t d = 0; d < queries[0].values.size(); ++d) {
    double total = 0.0;
    for (size_t j = 1; j < queries.size(); ++j) total += queries[j].values[d];
    EXPECT_DOUBLE_EQ(total, 1.0) << "cell " << d;
  }
  EXPECT_EQ(queries[1].label, "A=0");
}

TEST(WorkloadsTest, MarginalOverJoinAttribute) {
  const JoinQuery query = MakeTwoTableQuery(3, 4, 2);
  const int b = query.AttributeIndex("B").value();
  const auto queries = MakeMarginalQueries(query, 1, b);
  ASSERT_EQ(queries.size(), 5u);  // ones + |dom(B)| = 4
  // Marginal B=2 selects exactly the R2 tuples with B digit 2.
  const MixedRadix& coder = query.tuple_space(1);
  for (int64_t code = 0; code < coder.size(); ++code) {
    const double expected = coder.Digit(code, 0) == 2 ? 1.0 : 0.0;
    EXPECT_DOUBLE_EQ(queries[3].values[static_cast<size_t>(code)], expected);
  }
}

TEST(WorkloadsTest, MarginalWorkloadKind) {
  Rng rng(5);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kMarginal, 0, rng);
  // Per relation: ones + |dom(first attr)| = 4 queries.
  EXPECT_EQ(family.CountForTable(0), 4);
  EXPECT_EQ(family.TotalCount(), 16);
}

TEST(WorkloadsDeathTest, MarginalRejectsForeignAttribute) {
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const int c = query.AttributeIndex("C").value();
  EXPECT_DEATH((void)MakeMarginalQueries(query, 0, c), "not in relation");
}

TEST(WorkloadsTest, MakeWorkloadBuildsProductFamily) {
  Rng rng(4);
  const JoinQuery query = MakePathQuery(3, 2);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 3, rng);
  EXPECT_EQ(family.num_relations(), 3);
  for (int r = 0; r < 3; ++r) EXPECT_EQ(family.CountForTable(r), 4);
  EXPECT_EQ(family.TotalCount(), 64);
  // Query 0 is count (all all-ones).
  for (int r = 0; r < 3; ++r) {
    for (double v : family.table_queries(r)[0].values) {
      EXPECT_DOUBLE_EQ(v, 1.0);
    }
  }
}

TEST(WorkloadsTest, WorkloadsAreSeedDeterministic) {
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  Rng rng1(9), rng2(9);
  const QueryFamily a = MakeWorkload(query, WorkloadKind::kRandomUniform, 2,
                                     rng1);
  const QueryFamily b = MakeWorkload(query, WorkloadKind::kRandomUniform, 2,
                                     rng2);
  for (int r = 0; r < 2; ++r) {
    for (size_t j = 0; j < a.table_queries(r).size(); ++j) {
      EXPECT_EQ(a.table_queries(r)[j].values, b.table_queries(r)[j].values);
    }
  }
}

}  // namespace
}  // namespace dpjoin
