// FactoredTensor unit suite: the product-form backing must agree with its
// dense materialization on every cell, every product answer, and every
// marginal — and ComputeWorkloadFactorization must derive exactly the
// connected components of the workload's attribute co-occurrence graph.

#include "query/factored_tensor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "query/workloads.h"

namespace dpjoin {
namespace {

// A {4,3,2} domain factored as {0,2} (mode 1 auto-fills as a singleton).
FactoredTensor MakeUniform(double mass) {
  return FactoredTensor(MixedRadix({4, 3, 2}), {{0, 2}}, mass);
}

TEST(FactoredTensorTest, UniformConstructionFillsSingletons) {
  const FactoredTensor t = MakeUniform(24.0);
  ASSERT_EQ(t.num_factors(), 2u);
  EXPECT_EQ(t.factor(0).modes, (std::vector<size_t>{0, 2}));
  EXPECT_EQ(t.factor(1).modes, (std::vector<size_t>{1}));
  EXPECT_DOUBLE_EQ(t.TotalMass(), 24.0);
  EXPECT_DOUBLE_EQ(t.DomainCells(), 24.0);
  EXPECT_EQ(t.StorageCells(), 8 + 3);  // sum of factor sizes, not product
  for (int64_t flat = 0; flat < 24; ++flat) {
    EXPECT_NEAR(t.At(flat), 1.0, 1e-12);  // 24/24 per cell
  }
  EXPECT_EQ(t.factor_of_mode(2), 0u);
  EXPECT_EQ(t.digit_in_factor(2), 1u);
  EXPECT_EQ(t.factor_of_mode(1), 1u);
}

TEST(FactoredTensorTest, AtMatchesToDenseAfterUpdates) {
  FactoredTensor t = MakeUniform(10.0);
  // Touch the {0,2} factor with a product indicator on modes 0 and 2.
  const std::vector<double> q0 = {1, 0, 0, 1};
  const std::vector<double> ones1 = {1, 1, 1};
  const std::vector<double> q2 = {0, 1};
  t.MultiplicativeUpdate({q0.data(), ones1.data(), q2.data()}, 0.7);
  // Touch the singleton factor.
  const std::vector<double> ones0 = {1, 1, 1, 1};
  const std::vector<double> q1 = {0.5, -0.5, 1.0};
  const std::vector<double> ones2 = {1, 1};
  t.MultiplicativeUpdate({ones0.data(), q1.data(), ones2.data()}, -0.3);
  const DenseTensor dense = t.ToDense();
  for (int64_t flat = 0; flat < dense.size(); ++flat) {
    EXPECT_NEAR(t.At(flat), dense.At(flat), 1e-12 * (1.0 + dense.At(flat)));
  }
  EXPECT_NEAR(t.TotalMass(), dense.TotalMass(), 1e-9);
}

TEST(FactoredTensorTest, AllOnesUpdateIsAPureRescale) {
  FactoredTensor t = MakeUniform(5.0);
  const std::vector<double> ones0 = {1, 1, 1, 1};
  const std::vector<double> ones1 = {1, 1, 1};
  const std::vector<double> ones2 = {1, 1};
  t.MultiplicativeUpdate({ones0.data(), ones1.data(), ones2.data()}, 0.4);
  EXPECT_NEAR(t.TotalMass(), 5.0 * std::exp(0.4), 1e-12);
  EXPECT_NEAR(t.At(0) / t.At(23), 1.0, 1e-12);  // still uniform
}

TEST(FactoredTensorDeathTest, CrossFactorUpdateIsRejected) {
  FactoredTensor t = MakeUniform(5.0);
  const std::vector<double> q0 = {1, 0, 0, 0};
  const std::vector<double> q1 = {0, 1, 0};
  const std::vector<double> ones2 = {1, 1};
  EXPECT_DEATH(
      t.MultiplicativeUpdate({q0.data(), q1.data(), ones2.data()}, 0.5),
      "crosses factors");
}

TEST(FactoredTensorTest, NormalizeToPreservesRatios) {
  FactoredTensor t = MakeUniform(10.0);
  const std::vector<double> q0 = {1, 0, 0, 0};
  const std::vector<double> ones1 = {1, 1, 1};
  const std::vector<double> ones2 = {1, 1};
  t.MultiplicativeUpdate({q0.data(), ones1.data(), ones2.data()}, 1.0);
  const double ratio = t.At(0) / t.At(23);
  t.NormalizeTo(3.0);
  EXPECT_NEAR(t.TotalMass(), 3.0, 1e-12);
  EXPECT_NEAR(t.At(0) / t.At(23), ratio, 1e-12);
}

TEST(FactoredTensorTest, AnswerProductMatchesDenseDot) {
  Rng rng(17);
  FactoredTensor t = MakeUniform(7.0);
  const std::vector<double> q0 = {0, 1, 1, 0};
  const std::vector<double> ones1 = {1, 1, 1};
  const std::vector<double> q2 = {1, 0};
  t.MultiplicativeUpdate({q0.data(), ones1.data(), q2.data()}, 0.9);
  // A random product query spanning both factors.
  std::vector<std::vector<double>> qv(3);
  for (size_t d = 0; d < 3; ++d) {
    const int64_t radix = t.shape().radix(d);
    for (int64_t v = 0; v < radix; ++v) {
      qv[d].push_back(rng.UniformDouble(-1.0, 1.0));
    }
  }
  const double got = t.AnswerProduct({qv[0].data(), qv[1].data(),
                                      qv[2].data()});
  const DenseTensor dense = t.ToDense();
  double want = 0.0;
  std::vector<int64_t> digits;
  for (int64_t flat = 0; flat < dense.size(); ++flat) {
    digits = t.shape().Decode(flat);
    double q = 1.0;
    for (size_t d = 0; d < 3; ++d) q *= qv[d][static_cast<size_t>(digits[d])];
    want += dense.At(flat) * q;
  }
  EXPECT_NEAR(got, want, 1e-9 * (1.0 + std::abs(want)));
}

TEST(FactoredTensorTest, MarginalOverMatchesDense) {
  FactoredTensor t = MakeUniform(9.0);
  const std::vector<double> q0 = {1, 1, 0, 0};
  const std::vector<double> ones1 = {1, 1, 1};
  const std::vector<double> q2 = {0, 1};
  t.MultiplicativeUpdate({q0.data(), ones1.data(), q2.data()}, -0.6);
  // Marginal over modes {1, 2}: one selected mode per factor kind
  // (singleton and a strict subset of the {0,2} factor).
  const std::vector<double> got = t.MarginalOver({1, 2});
  const DenseTensor dense = t.ToDense();
  const MixedRadix out_shape({3, 2});
  std::vector<double> want(6, 0.0);
  for (int64_t flat = 0; flat < dense.size(); ++flat) {
    const std::vector<int64_t> digits = t.shape().Decode(flat);
    want[static_cast<size_t>(out_shape.Encode({digits[1], digits[2]}))] +=
        dense.At(flat);
  }
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-9 * (1.0 + want[i])) << "cell " << i;
  }
}

TEST(FactoredTensorTest, ScaleAccessorsComposeWithLogicalView) {
  FactoredTensor t = MakeUniform(4.0);
  t.set_factor_scale(0, 2.0);
  t.set_scale(t.scale() * 0.5);
  EXPECT_NEAR(t.TotalMass(), 4.0, 1e-12);  // 0.5 · 2 cancels
  EXPECT_NEAR(t.At(0), 4.0 / 24.0, 1e-12);
}

JoinQuery SingleRelationQuery() {
  auto q = JoinQuery::Create({{"A", 4}, {"B", 3}, {"C", 2}}, {{"A", "B", "C"}});
  DPJOIN_CHECK(q.ok(), q.status().ToString());
  return std::move(q).value();
}

TEST(WorkloadFactorizationTest, MarginalAllSplitsIntoSingletons) {
  const JoinQuery query = SingleRelationQuery();
  Rng rng(3);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kMarginalAll, 0, rng);
  const WorkloadFactorization wf = ComputeWorkloadFactorization(query, family);
  ASSERT_TRUE(wf.product_form) << wf.reason;
  // Each marginal touches one attribute: three singleton components.
  ASSERT_EQ(wf.groups.size(), 3u);
  EXPECT_EQ(wf.groups[0], (std::vector<size_t>{0}));
  EXPECT_EQ(wf.groups[1], (std::vector<size_t>{1}));
  EXPECT_EQ(wf.groups[2], (std::vector<size_t>{2}));
  EXPECT_EQ(wf.group_cells, (std::vector<int64_t>{4, 3, 2}));
  EXPECT_EQ(wf.max_group_cells, 4);
  EXPECT_DOUBLE_EQ(wf.sum_cells, 9.0);
  EXPECT_DOUBLE_EQ(wf.total_cells, 24.0);
}

TEST(WorkloadFactorizationTest, PointQueriesCliqueEverything) {
  const JoinQuery query = SingleRelationQuery();
  Rng rng(5);
  const QueryFamily family = MakeWorkload(query, WorkloadKind::kPoint, 3, rng);
  const WorkloadFactorization wf = ComputeWorkloadFactorization(query, family);
  ASSERT_TRUE(wf.product_form) << wf.reason;
  // A point indicator supports every attribute, so one component spans all.
  ASSERT_EQ(wf.groups.size(), 1u);
  EXPECT_EQ(wf.groups[0], (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(wf.max_group_cells, 24);
}

TEST(WorkloadFactorizationTest, DenseWorkloadIsNotProductForm) {
  const JoinQuery query = SingleRelationQuery();
  Rng rng(7);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 2, rng);
  const WorkloadFactorization wf = ComputeWorkloadFactorization(query, family);
  EXPECT_FALSE(wf.product_form);
  EXPECT_NE(wf.reason.find("product form"), std::string::npos) << wf.reason;
}

TEST(WorkloadFactorizationTest, MultiRelationQueriesAreRefused) {
  auto q = JoinQuery::Create({{"A", 3}, {"B", 3}}, {{"A"}, {"A", "B"}});
  ASSERT_TRUE(q.ok());
  const JoinQuery query = std::move(q).value();
  Rng rng(9);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kMarginal, 0, rng);
  const WorkloadFactorization wf = ComputeWorkloadFactorization(query, family);
  EXPECT_FALSE(wf.product_form);
  EXPECT_NE(wf.reason.find("single-relation"), std::string::npos);
}

TEST(FactoredTensorTest, HugeDomainStaysWithinFactorStorage) {
  // 10 attributes of size 16: |D| = 2^40 cells, yet storage is 10·16
  // doubles when the workload splits every attribute into its own factor.
  std::vector<int64_t> radices(10, 16);
  std::vector<std::vector<size_t>> groups;
  for (size_t d = 0; d < 10; ++d) groups.push_back({d});
  const FactoredTensor t(MixedRadix(radices), std::move(groups), 1000.0);
  EXPECT_EQ(t.StorageCells(), 160);
  EXPECT_DOUBLE_EQ(t.DomainCells(), std::pow(2.0, 40.0));
  EXPECT_NEAR(t.TotalMass(), 1000.0, 1e-9);
  // Spot-check a cell of the (huge) logical domain.
  EXPECT_NEAR(t.At(int64_t{123456789}),
              1000.0 / std::pow(2.0, 40.0), 1e-24);
}

}  // namespace
}  // namespace dpjoin
