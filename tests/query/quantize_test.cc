#include "query/quantize.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "relational/join_query.h"

namespace dpjoin {
namespace {

DenseTensor MakeFractionalTensor() {
  DenseTensor t(MixedRadix({4, 4}));
  Rng rng(5);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.Set(i, rng.UniformDouble(0.0, 3.0));
  }
  return t;
}

TEST(QuantizeTest, RandomizedRoundingProducesIntegers) {
  const DenseTensor t = MakeFractionalTensor();
  Rng rng(1);
  const DenseTensor q = QuantizeRandomized(t, rng);
  for (int64_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(q.At(i), std::floor(q.At(i)));
    EXPECT_GE(q.At(i), std::floor(t.At(i)));
    EXPECT_LE(q.At(i), std::ceil(t.At(i)));
  }
}

TEST(QuantizeTest, RandomizedRoundingIsUnbiasedPerCell) {
  DenseTensor t(MixedRadix({1}));
  t.Set(0, 2.3);
  Rng rng(2);
  SampleStats stats;
  for (int rep = 0; rep < 20000; ++rep) {
    stats.Add(QuantizeRandomized(t, rng).At(0));
  }
  EXPECT_NEAR(stats.Mean(), 2.3, 0.02);
}

TEST(QuantizeTest, RandomizedRoundingUnbiasedForLinearQueries) {
  const JoinQuery query = MakeTwoTableQuery(2, 2, 2);
  Rng wl_rng(3);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 2, wl_rng);
  DenseTensor t(MixedRadix({4, 4}));
  Rng fill_rng(4);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.Set(i, fill_rng.UniformDouble(0.0, 2.0));
  }
  const double truth = EvaluateOnTensor(family, {1, 1}, t);
  Rng rng(5);
  SampleStats stats;
  for (int rep = 0; rep < 5000; ++rep) {
    stats.Add(EvaluateOnTensor(family, {1, 1}, QuantizeRandomized(t, rng)));
  }
  EXPECT_NEAR(stats.Mean(), truth, 0.15);
}

TEST(QuantizeTest, IntegerTensorIsFixedPoint) {
  DenseTensor t(MixedRadix({3}));
  t.Set(0, 2.0);
  t.Set(2, 5.0);
  Rng rng(6);
  const DenseTensor q = QuantizeRandomized(t, rng);
  EXPECT_EQ(q.values(), t.values());
  EXPECT_EQ(QuantizeErrorDiffusion(t).values(), t.values());
}

TEST(QuantizeTest, ErrorDiffusionPreservesTotalWithinOne) {
  const DenseTensor t = MakeFractionalTensor();
  const DenseTensor q = QuantizeErrorDiffusion(t);
  EXPECT_LE(std::abs(q.TotalMass() - t.TotalMass()), 1.0);
  for (int64_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(q.At(i), std::floor(q.At(i)));
    EXPECT_GE(q.At(i), 0.0);
  }
}

TEST(QuantizeTest, ErrorDiffusionPrefixSumsStayClose) {
  const DenseTensor t = MakeFractionalTensor();
  const DenseTensor q = QuantizeErrorDiffusion(t);
  double real_prefix = 0.0, int_prefix = 0.0;
  for (int64_t i = 0; i < t.size(); ++i) {
    real_prefix += t.At(i);
    int_prefix += q.At(i);
    EXPECT_LE(std::abs(real_prefix - int_prefix), 1.0) << "prefix " << i;
  }
}

TEST(QuantizeTest, EnumerateRecordsListsPositiveCells) {
  DenseTensor t(MixedRadix({4}));
  t.Set(1, 2.0);
  t.Set(3, 1.0);
  const auto records = EnumerateRecords(t);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], std::make_pair(int64_t{1}, int64_t{2}));
  EXPECT_EQ(records[1], std::make_pair(int64_t{3}, int64_t{1}));
}

TEST(QuantizeDeathTest, EnumerateRejectsFractionalTensor) {
  DenseTensor t(MixedRadix({2}));
  t.Set(0, 1.5);
  EXPECT_DEATH((void)EnumerateRecords(t), "integer tensor");
}

}  // namespace
}  // namespace dpjoin
