#include "query/evaluation.h"

#include <gtest/gtest.h>

#include "query/workloads.h"
#include "relational/join.h"
#include "relational/join_query.h"
#include "testing/brute_force.h"

namespace dpjoin {
namespace {

TEST(EvaluationTest, ReleaseShapeMatchesRelationDomains) {
  const JoinQuery query = MakeTwoTableQuery(2, 3, 4);
  const MixedRadix shape = ReleaseShape(query);
  ASSERT_EQ(shape.num_digits(), 2u);
  EXPECT_EQ(shape.radix(0), 6);
  EXPECT_EQ(shape.radix(1), 12);
  EXPECT_EQ(shape.size(), 72);
}

TEST(EvaluationDeathTest, ReleaseShapeRejectsHugeDomains) {
  const JoinQuery query = MakeTwoTableQuery(1000, 1000, 1000);
  EXPECT_DEATH((void)ReleaseShape(query, 1 << 20), "too large");
}

TEST(EvaluationTest, JoinTensorMatchesJoinFunction) {
  Rng rng(31);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const Instance instance = testing::RandomInstance(query, 10, rng);
  const DenseTensor tensor = JoinTensor(instance);
  EXPECT_DOUBLE_EQ(tensor.TotalMass(), JoinCount(instance));
  // Spot-check cells: Join(t1, t2) = ρ·R1(t1)·R2(t2).
  const Relation& r1 = instance.relation(0);
  const Relation& r2 = instance.relation(1);
  for (int64_t c1 = 0; c1 < r1.tuple_space().size(); ++c1) {
    for (int64_t c2 = 0; c2 < r2.tuple_space().size(); ++c2) {
      const int64_t b1 = r1.ProjectCode(c1, AttributeSet::Of(1));
      const int64_t b2 = r2.ProjectCode(c2, AttributeSet::Of(1));
      const double expected =
          (b1 == b2) ? static_cast<double>(r1.Frequency(c1) * r2.Frequency(c2))
                     : 0.0;
      EXPECT_DOUBLE_EQ(tensor.AtDigits({c1, c2}), expected);
    }
  }
}

TEST(EvaluationTest, CountingQueryOnTensorIsTotalMass) {
  Rng rng(32);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const Instance instance = testing::RandomInstance(query, 12, rng);
  const QueryFamily family = MakeCountingFamily(query);
  const DenseTensor tensor = JoinTensor(instance);
  EXPECT_DOUBLE_EQ(EvaluateOnTensor(family, {0, 0}, tensor),
                   tensor.TotalMass());
  EXPECT_DOUBLE_EQ(EvaluateOnInstance(family, {0, 0}, instance),
                   JoinCount(instance));
}

struct EvalParam {
  const char* name;
  WorkloadKind kind;
  int64_t per_table;
  int64_t tuples;
  uint64_t seed;
};

class EvaluationOracleTest : public ::testing::TestWithParam<EvalParam> {};

TEST_P(EvaluationOracleTest, AllEvaluationPathsAgree) {
  const EvalParam& param = GetParam();
  Rng rng(param.seed);
  const JoinQuery query = MakeTwoTableQuery(3, 4, 3);
  const Instance instance =
      testing::RandomInstance(query, param.tuples, rng);
  const QueryFamily family =
      MakeWorkload(query, param.kind, param.per_table, rng);
  const DenseTensor tensor = JoinTensor(instance);

  // Path 1: contraction on the dense join tensor.
  const std::vector<double> on_tensor = EvaluateAllOnTensor(family, tensor);
  // Path 2: sparse join enumeration.
  const std::vector<double> on_instance =
      EvaluateAllOnInstance(family, instance);
  // Path 3 (oracle): brute force per query; also single-query entry points.
  ASSERT_EQ(on_tensor.size(), static_cast<size_t>(family.TotalCount()));
  ASSERT_EQ(on_instance.size(), on_tensor.size());
  for (int64_t flat = 0; flat < family.TotalCount(); ++flat) {
    const auto parts = family.Decompose(flat);
    const double oracle =
        testing::BruteForceQueryAnswer(family, parts, instance);
    EXPECT_NEAR(on_tensor[static_cast<size_t>(flat)], oracle, 1e-9)
        << family.LabelOf(flat);
    EXPECT_NEAR(on_instance[static_cast<size_t>(flat)], oracle, 1e-9);
    EXPECT_NEAR(EvaluateOnTensor(family, parts, tensor), oracle, 1e-9);
    EXPECT_NEAR(EvaluateOnInstance(family, parts, instance), oracle, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, EvaluationOracleTest,
    ::testing::Values(EvalParam{"random_sign", WorkloadKind::kRandomSign, 3,
                                12, 201},
                      EvalParam{"random_uniform", WorkloadKind::kRandomUniform,
                                3, 12, 202},
                      EvalParam{"prefix", WorkloadKind::kPrefix, 4, 15, 203},
                      EvalParam{"point", WorkloadKind::kPoint, 4, 15, 204},
                      EvalParam{"empty_instance", WorkloadKind::kRandomSign, 3,
                                0, 205}),
    [](const ::testing::TestParamInfo<EvalParam>& info) {
      return info.param.name;
    });

TEST(EvaluationTest, ThreeTableAllPathsAgree) {
  Rng rng(41);
  const JoinQuery query = MakePathQuery(3, 3);
  const Instance instance = testing::RandomInstance(query, 8, rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomUniform, 2, rng);
  const DenseTensor tensor = JoinTensor(instance);
  const auto on_tensor = EvaluateAllOnTensor(family, tensor);
  const auto on_instance = EvaluateAllOnInstance(family, instance);
  for (int64_t flat = 0; flat < family.TotalCount(); ++flat) {
    const double oracle = testing::BruteForceQueryAnswer(
        family, family.Decompose(flat), instance);
    EXPECT_NEAR(on_tensor[static_cast<size_t>(flat)], oracle, 1e-9);
    EXPECT_NEAR(on_instance[static_cast<size_t>(flat)], oracle, 1e-9);
  }
}

TEST(EvaluationTest, MaxAbsDifference) {
  EXPECT_DOUBLE_EQ(MaxAbsDifference({1.0, 2.0}, {1.5, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(MaxAbsDifference({}, {}), 0.0);
}

TEST(EvaluationTest, WorkloadErrorZeroForExactTensor) {
  Rng rng(55);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const Instance instance = testing::RandomInstance(query, 10, rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 3, rng);
  // The exact join tensor answers every linear query exactly.
  EXPECT_NEAR(WorkloadError(family, instance, JoinTensor(instance)), 0.0,
              1e-9);
}

}  // namespace
}  // namespace dpjoin
