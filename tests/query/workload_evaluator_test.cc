// WorkloadEvaluator: the cached all-query evaluator must agree BIT-FOR-BIT
// with the retained naive EvaluateAllOnTensor (same contraction kernel, same
// matrices), its indicator metadata must describe the workload exactly, and
// the box-restricted evaluation must equal the brute-force box sum.

#include "query/workload_evaluator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "relational/generators.h"
#include "testing/brute_force.h"
#include "testing/queries.h"

namespace dpjoin {
namespace {

struct Case {
  const char* name;
  int kind;       // 0 = two-table, 1 = path3, 2 = star
  WorkloadKind workload;
  int64_t per_table;
};

JoinQuery MakeQueryByKind(int kind) {
  switch (kind) {
    case 0:
      return MakeTwoTableQuery(5, 7, 6);
    case 1:
      return MakePathQuery(3, 4);
    default:
      return testing::MakeSmallStarQuery(3, 5, 4);
  }
}

class WorkloadEvaluatorTest : public ::testing::TestWithParam<Case> {};

TEST_P(WorkloadEvaluatorTest, EvaluateAllMatchesOracleBitForBit) {
  const Case& param = GetParam();
  Rng rng(100 + static_cast<uint64_t>(param.kind) * 17 +
          static_cast<uint64_t>(param.workload));
  const JoinQuery query = MakeQueryByKind(param.kind);
  const Instance instance = testing::RandomInstance(query, 30, rng);
  const QueryFamily family =
      MakeWorkload(query, param.workload, param.per_table, rng);
  const DenseTensor tensor = JoinTensor(instance);

  const WorkloadEvaluator evaluator(family, tensor.shape());
  const std::vector<double> oracle = EvaluateAllOnTensor(family, tensor);
  const std::vector<double> cached = evaluator.EvaluateAll(tensor);
  ASSERT_EQ(cached.size(), oracle.size());
  for (size_t q = 0; q < oracle.size(); ++q) {
    EXPECT_EQ(cached[q], oracle[q]) << "query " << q;
  }
  // Bit-identical across thread counts too (cached matrices change nothing
  // about the contraction's block decomposition).
  for (int threads : {2, 8}) {
    ScopedThreads scoped(threads);
    const std::vector<double> answers = evaluator.EvaluateAll(tensor);
    for (size_t q = 0; q < oracle.size(); ++q) {
      EXPECT_EQ(answers[q], oracle[q]) << "query " << q << " threads "
                                       << threads;
    }
  }
}

TEST_P(WorkloadEvaluatorTest, IndicatorMetadataMatchesTheQueryValues) {
  const Case& param = GetParam();
  Rng rng(300 + static_cast<uint64_t>(param.kind) * 17 +
          static_cast<uint64_t>(param.workload));
  const JoinQuery query = MakeQueryByKind(param.kind);
  const QueryFamily family =
      MakeWorkload(query, param.workload, param.per_table, rng);
  const WorkloadEvaluator evaluator(family, ReleaseShape(query));

  for (int rel = 0; rel < family.num_relations(); ++rel) {
    const auto& queries = family.table_queries(rel);
    for (size_t j = 0; j < queries.size(); ++j) {
      const auto& info = evaluator.info(rel, static_cast<int64_t>(j));
      bool expect_indicator = true;
      std::vector<int64_t> expect_support;
      for (size_t d = 0; d < queries[j].values.size(); ++d) {
        const double v = queries[j].values[d];
        if (v == 1.0) {
          expect_support.push_back(static_cast<int64_t>(d));
        } else if (v != 0.0) {
          expect_indicator = false;
        }
      }
      EXPECT_EQ(info.is_indicator, expect_indicator);
      if (expect_indicator) {
        EXPECT_EQ(info.support, expect_support);
        EXPECT_EQ(info.is_all_ones,
                  expect_support.size() == queries[j].values.size());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, WorkloadEvaluatorTest,
    ::testing::Values(
        Case{"two_table_prefix", 0, WorkloadKind::kPrefix, 4},
        Case{"two_table_sign", 0, WorkloadKind::kRandomSign, 3},
        Case{"two_table_uniform", 0, WorkloadKind::kRandomUniform, 3},
        Case{"path3_point", 1, WorkloadKind::kPoint, 3},
        Case{"path3_marginal", 1, WorkloadKind::kMarginal, 0},
        Case{"star_prefix", 2, WorkloadKind::kPrefix, 3},
        Case{"star_uniform", 2, WorkloadKind::kRandomUniform, 2}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return info.param.name;
    });

TEST(WorkloadEvaluatorBoxTest, BoxEvaluationMatchesBruteForceBoxSum) {
  const JoinQuery query = MakeTwoTableQuery(4, 5, 4);
  Rng rng(7);
  const Instance instance = testing::RandomInstance(query, 25, rng);
  const QueryFamily family = MakeWorkload(query, WorkloadKind::kPrefix, 3, rng);
  const DenseTensor tensor = JoinTensor(instance);
  const MixedRadix& shape = tensor.shape();
  const WorkloadEvaluator evaluator(family, shape);

  // Every indicator product query of the family is a candidate box.
  for (int64_t flat = 0; flat < family.TotalCount(); ++flat) {
    const std::vector<int64_t> parts = family.Decompose(flat);
    ASSERT_TRUE(evaluator.IsProductIndicator(parts));
    const int64_t box_cells = evaluator.BoxCells(parts);

    // Extract the box in row-major support order.
    std::vector<double> box_values;
    box_values.reserve(static_cast<size_t>(box_cells));
    const auto& s0 = evaluator.info(0, parts[0]).support;
    const auto& s1 = evaluator.info(1, parts[1]).support;
    for (int64_t c0 : s0) {
      for (int64_t c1 : s1) {
        box_values.push_back(tensor.At(shape.Encode({c0, c1})));
      }
    }

    const std::vector<double> delta =
        evaluator.EvaluateAllOnBox(parts, box_values);
    // Brute-force: for every query q, sum q over the box only.
    for (int64_t other = 0; other < family.TotalCount(); ++other) {
      const std::vector<int64_t> op = family.Decompose(other);
      const auto& q0 = family.table_queries(0)[static_cast<size_t>(op[0])];
      const auto& q1 = family.table_queries(1)[static_cast<size_t>(op[1])];
      double expected = 0.0;
      for (int64_t c0 : s0) {
        for (int64_t c1 : s1) {
          expected += tensor.At(shape.Encode({c0, c1})) *
                      q0.values[static_cast<size_t>(c0)] *
                      q1.values[static_cast<size_t>(c1)];
        }
      }
      EXPECT_NEAR(delta[static_cast<size_t>(other)], expected,
                  1e-9 * (1.0 + std::abs(expected)))
          << "box " << flat << " query " << other;
    }
  }
}

TEST(WorkloadEvaluatorBoxTest, NonIndicatorQueriesAreReported) {
  const JoinQuery query = MakeTwoTableQuery(4, 3, 4);
  Rng rng(9);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomUniform, 2, rng);
  const WorkloadEvaluator evaluator(family, ReleaseShape(query));
  // Query 0 per table is the all-ones query: indicator with full support.
  EXPECT_TRUE(evaluator.IsProductIndicator({0, 0}));
  EXPECT_TRUE(evaluator.IsAllOnes({0, 0}));
  // Uniform-valued queries are not indicators.
  EXPECT_FALSE(evaluator.IsProductIndicator({1, 1}));
  EXPECT_FALSE(evaluator.IsProductIndicator({0, 2}));
}

TEST(WorkloadEvaluatorOrderTest, SoleNonIndicatorModeContractsLast) {
  // Relation 0 carries indicator (point) queries, relation 1 the only
  // non-indicator (uniform-valued) ones. The contraction must run the
  // indicator mode FIRST so the single dense matrix touches the already
  // shrunk |Q_0|-sized intermediate — i.e. mode 1 goes last, reversing the
  // default last-to-first order.
  const JoinQuery query = MakeTwoTableQuery(4, 3, 4);
  Rng rng(11);
  auto family = QueryFamily::Create(
      query, {MakePointQueries(query, 0, 2, rng),
              MakeRandomUniformQueries(query, 1, 3, rng)});
  ASSERT_TRUE(family.ok());
  const WorkloadEvaluator evaluator(*family, ReleaseShape(query));
  EXPECT_EQ(evaluator.contraction_order(), (std::vector<size_t>{0, 1}));

  // All-indicator and several-non-indicator families keep last-to-first.
  auto indicators = QueryFamily::Create(
      query, {MakePointQueries(query, 0, 2, rng),
              MakePointQueries(query, 1, 2, rng)});
  ASSERT_TRUE(indicators.ok());
  EXPECT_EQ(WorkloadEvaluator(*indicators, ReleaseShape(query))
                .contraction_order(),
            (std::vector<size_t>{1, 0}));

  // The reordering is a pure scheduling choice: answers still match the
  // brute-force per-query evaluation.
  Rng data_rng(12);
  const Instance instance = testing::RandomInstance(query, 30, data_rng);
  const DenseTensor tensor = JoinTensor(instance);
  const std::vector<double> got = evaluator.EvaluateAll(tensor);
  const std::vector<double> want = EvaluateAllOnTensor(*family, tensor);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-9 * (1.0 + std::abs(want[i])))
        << "query " << i;
  }
}

TEST(WorkloadEvaluatorFlopsTest, MatchesTheContractionSequenceCost) {
  // Two modes, |D| = (3, 4), |Q| = (2, 5): contracting mode 1 first costs
  // 3·5·4 = 60, then mode 0 costs 2·3·5 = 30.
  EXPECT_DOUBLE_EQ(WorkloadEvaluator::EvaluationFlops({3, 4}, {2, 5}), 90.0);
  // Single mode: |Q|·|D|.
  EXPECT_DOUBLE_EQ(WorkloadEvaluator::EvaluationFlops({16}, {3}), 48.0);
}

}  // namespace
}  // namespace dpjoin
