#include "query/dense_tensor.h"

#include <gtest/gtest.h>

namespace dpjoin {
namespace {

TEST(DenseTensorTest, ZeroInitialized) {
  DenseTensor t(MixedRadix({2, 3}));
  EXPECT_EQ(t.size(), 6);
  EXPECT_DOUBLE_EQ(t.TotalMass(), 0.0);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(t.At(i), 0.0);
}

TEST(DenseTensorTest, SetAddAt) {
  DenseTensor t(MixedRadix({2, 2}));
  t.Set(1, 3.0);
  t.Add(1, 2.0);
  EXPECT_DOUBLE_EQ(t.At(1), 5.0);
  EXPECT_DOUBLE_EQ(t.AtDigits({0, 1}), 5.0);
  EXPECT_DOUBLE_EQ(t.TotalMass(), 5.0);
}

TEST(DenseTensorTest, FillAndScale) {
  DenseTensor t(MixedRadix({4}));
  t.Fill(2.0);
  EXPECT_DOUBLE_EQ(t.TotalMass(), 8.0);
  t.Scale(0.5);
  EXPECT_DOUBLE_EQ(t.TotalMass(), 4.0);
}

TEST(DenseTensorTest, NormalizeToTarget) {
  DenseTensor t(MixedRadix({3}));
  t.Set(0, 1.0);
  t.Set(1, 3.0);
  t.NormalizeTo(10.0);
  EXPECT_NEAR(t.TotalMass(), 10.0, 1e-12);
  EXPECT_NEAR(t.At(1) / t.At(0), 3.0, 1e-12);  // ratios preserved
}

TEST(DenseTensorTest, AddTensorIsElementwiseUnion) {
  DenseTensor a(MixedRadix({2, 2}));
  DenseTensor b(MixedRadix({2, 2}));
  a.Set(0, 1.0);
  b.Set(0, 2.0);
  b.Set(3, 4.0);
  a.AddTensor(b);
  EXPECT_DOUBLE_EQ(a.At(0), 3.0);
  EXPECT_DOUBLE_EQ(a.At(3), 4.0);
  EXPECT_DOUBLE_EQ(a.TotalMass(), 7.0);
}

TEST(DenseTensorTest, DeferredScaleIsAppliedLazily) {
  DenseTensor t(MixedRadix({4}));
  for (int64_t i = 0; i < 4; ++i) t.Set(i, static_cast<double>(i + 1));
  EXPECT_DOUBLE_EQ(t.deferred_scale(), 1.0);
  t.ScaleDeferred(0.5);
  EXPECT_DOUBLE_EQ(t.deferred_scale(), 0.5);
  EXPECT_DOUBLE_EQ(t.At(3), 2.0);  // logical view scales
  const DenseTensor& ct = t;
  EXPECT_DOUBLE_EQ(ct.raw_values()[3], 4.0);  // raw storage untouched
  EXPECT_DOUBLE_EQ(t.TotalMass(), 5.0);    // 10 * 0.5
  t.Materialize();
  EXPECT_DOUBLE_EQ(t.deferred_scale(), 1.0);
  EXPECT_DOUBLE_EQ(t.At(3), 2.0);          // logical view unchanged
  EXPECT_DOUBLE_EQ(t.values()[3], 2.0);    // now folded into storage
}

TEST(DenseTensorTest, NormalizeDeferredIsAnO1Rescale) {
  DenseTensor t(MixedRadix({2, 2}));
  t.Fill(2.0);  // raw mass 8
  t.NormalizeDeferred(/*target=*/40.0, /*raw_mass=*/8.0);
  EXPECT_DOUBLE_EQ(t.deferred_scale(), 5.0);
  EXPECT_DOUBLE_EQ(t.TotalMass(), 40.0);
  EXPECT_DOUBLE_EQ(t.At(0), 10.0);
}

TEST(DenseTensorDeathTest, RawAccessorsRejectPendingScale) {
  DenseTensor t(MixedRadix({2}));
  t.Set(0, 1.0);
  t.ScaleDeferred(2.0);
  EXPECT_DEATH(t.values(), "deferred scale");
  EXPECT_DEATH(t.mutable_values(), "deferred scale");
  EXPECT_DEATH(t.Set(0, 1.0), "deferred scale");
  EXPECT_DEATH(t.Add(0, 1.0), "deferred scale");
  EXPECT_DEATH(t.Fill(1.0), "deferred scale");
  t.Materialize();
  EXPECT_DOUBLE_EQ(t.values()[0], 2.0);  // fine again once materialized
}

TEST(DenseTensorDeathTest, MismatchedShapesAbort) {
  DenseTensor a(MixedRadix({2, 2}));
  DenseTensor b(MixedRadix({2, 3}));
  EXPECT_DEATH(a.AddTensor(b), "");
  DenseTensor zero(MixedRadix({2}));
  EXPECT_DEATH(zero.NormalizeTo(1.0), "");
}

}  // namespace
}  // namespace dpjoin
