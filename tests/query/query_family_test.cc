#include "query/query_family.h"

#include <gtest/gtest.h>

#include "query/workloads.h"
#include "relational/join_query.h"

namespace dpjoin {
namespace {

std::vector<TableQuery> TwoQueries(int64_t dom) {
  TableQuery ones{"ones", std::vector<double>(static_cast<size_t>(dom), 1.0), {}};
  TableQuery half{"half", std::vector<double>(static_cast<size_t>(dom), 0.5), {}};
  return {ones, half};
}

TEST(QueryFamilyTest, ProductStructure) {
  const JoinQuery query = MakeTwoTableQuery(2, 2, 2);
  auto family = QueryFamily::Create(
      query, {TwoQueries(query.relation_domain_size(0)),
              TwoQueries(query.relation_domain_size(1))});
  ASSERT_TRUE(family.ok());
  EXPECT_EQ(family->num_relations(), 2);
  EXPECT_EQ(family->CountForTable(0), 2);
  EXPECT_EQ(family->TotalCount(), 4);
}

TEST(QueryFamilyTest, DecomposeRoundTrips) {
  const JoinQuery query = MakeTwoTableQuery(2, 2, 2);
  auto family = QueryFamily::Create(
      query, {TwoQueries(4), TwoQueries(4)});
  ASSERT_TRUE(family.ok());
  for (int64_t flat = 0; flat < family->TotalCount(); ++flat) {
    const auto parts = family->Decompose(flat);
    EXPECT_EQ(family->index().Encode(parts), flat);
  }
}

TEST(QueryFamilyTest, LabelsJoinPartLabels) {
  const JoinQuery query = MakeTwoTableQuery(2, 2, 2);
  auto family = QueryFamily::Create(query, {TwoQueries(4), TwoQueries(4)});
  ASSERT_TRUE(family.ok());
  EXPECT_EQ(family->LabelOf(0), "ones × ones");
  EXPECT_EQ(family->LabelOf(3), "half × half");
}

TEST(QueryFamilyTest, ValidatesShape) {
  const JoinQuery query = MakeTwoTableQuery(2, 2, 2);
  // Wrong number of lists.
  EXPECT_TRUE(QueryFamily::Create(query, {TwoQueries(4)})
                  .status()
                  .IsInvalidArgument());
  // Empty list for one relation.
  EXPECT_TRUE(QueryFamily::Create(query, {TwoQueries(4), {}})
                  .status()
                  .IsInvalidArgument());
  // Wrong arity.
  EXPECT_TRUE(QueryFamily::Create(query, {TwoQueries(4), TwoQueries(3)})
                  .status()
                  .IsInvalidArgument());
  // Out-of-range value.
  TableQuery bad{"bad", std::vector<double>(4, 2.0), {}};
  EXPECT_TRUE(QueryFamily::Create(query, {TwoQueries(4), {bad}})
                  .status()
                  .IsInvalidArgument());
}

TEST(QueryFamilyDeathTest, TableQueriesBoundsChecked) {
  // Regression: all-query evaluation used to read queries[0] for a relation
  // without checking the family actually had queries there — UB on a
  // default-constructed (never-validated) family. The accessor now CHECKs.
  QueryFamily family;
  EXPECT_DEATH((void)family.table_queries(0), "relation index out of range");
  const JoinQuery query = MakeTwoTableQuery(2, 2, 2);
  auto valid = QueryFamily::Create(query, {TwoQueries(4), TwoQueries(4)});
  ASSERT_TRUE(valid.ok());
  EXPECT_DEATH((void)valid->table_queries(2), "relation index out of range");
  EXPECT_DEATH((void)valid->table_queries(-1), "relation index out of range");
}

TEST(QueryFamilyTest, CountingFamilyIsSingleton) {
  const JoinQuery query = MakePathQuery(3, 2);
  const QueryFamily family = MakeCountingFamily(query);
  EXPECT_EQ(family.TotalCount(), 1);
  for (int r = 0; r < 3; ++r) {
    for (double v : family.table_queries(r)[0].values) {
      EXPECT_DOUBLE_EQ(v, 1.0);
    }
  }
}

}  // namespace
}  // namespace dpjoin
