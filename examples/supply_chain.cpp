// Supply chain: Suppliers(region, part) ⋈ Stock(part, site) ⋈
// Shipments(site, lane) — a three-relation path join released with
// Algorithm 3 (MultiTable), which calibrates to residual sensitivity since
// local sensitivity itself is volatile for m ≥ 3 (paper §3.3).

#include <iostream>

#include "common/table_printer.h"
#include "core/multi_table.h"
#include "core/theory_bounds.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "relational/generators.h"
#include "relational/join.h"
#include "sensitivity/local_sensitivity.h"
#include "sensitivity/residual_sensitivity.h"

using namespace dpjoin;

int main() {
  auto query_or = JoinQuery::Create({{"region", 4},
                                     {"part", 8},
                                     {"site", 8},
                                     {"lane", 4}},
                                    {{"region", "part"},
                                     {"part", "site"},
                                     {"site", "lane"}});
  if (!query_or.ok()) {
    std::cerr << query_or.status() << "\n";
    return 1;
  }
  const JoinQuery query = *query_or;

  // Skewed logistics data: a few hub parts/sites dominate.
  Rng data_rng(77);
  const Instance instance =
      MakeZipfPathInstance(query, /*tuples_per_relation=*/80, /*zipf_s=*/1.2,
                           data_rng);
  const PrivacyParams params(1.0, 1e-4);
  const double beta = 1.0 / params.Lambda();

  std::cout << "Query: " << query.ToString() << "\n";
  std::cout << "n = " << instance.InputSize()
            << ", count(I) = " << JoinCount(instance) << "\n";
  // Sensitivity diagnostics — why Algorithm 3 exists:
  const double ls = LocalSensitivity(instance);
  const ResidualSensitivityResult rs = ResidualSensitivity(instance, beta);
  std::cout << "local sensitivity LS = " << ls
            << " (NOT usable directly: its own sensitivity is large for "
               "m = 3)\n";
  std::cout << "residual sensitivity RS^β = " << rs.value << " (argmax k = "
            << rs.argmax_k << ", searched " << rs.k_searched
            << " values of k)\n\n";

  // Workload: end-to-end flow queries (prefix aggregates per relation).
  Rng workload_rng(3);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kPrefix, 3, workload_rng);

  ReleaseOptions options;
  options.pmw_max_rounds = 24;
  Rng rng(123);
  auto result = MultiTable(instance, family, params, options, rng);
  if (!result.ok()) {
    std::cerr << "release failed: " << result.status() << "\n";
    return 1;
  }

  const auto truth = EvaluateAllOnInstance(family, instance);
  const auto priv = EvaluateAllOnTensor(family, result->synthetic);
  TablePrinter table({"query", "true", "private", "error"});
  for (int64_t q :
       {int64_t{0}, int64_t{1}, family.TotalCount() / 3,
        family.TotalCount() - 1}) {
    table.AddRow({family.LabelOf(q),
                  TablePrinter::Num(truth[static_cast<size_t>(q)]),
                  TablePrinter::Num(priv[static_cast<size_t>(q)]),
                  TablePrinter::Num(std::abs(
                      truth[static_cast<size_t>(q)] -
                      priv[static_cast<size_t>(q)]))});
  }
  table.Print();

  const double error = MaxAbsDifference(truth, priv);
  const double bound = MultiTableUpperBound(
      JoinCount(instance), result->delta_tilde, query.ReleaseDomainSize(),
      static_cast<double>(family.TotalCount()), params);
  std::cout << "\nℓ∞ error " << error << " vs Theorem 1.5 bound " << bound
            << " (ratio " << error / bound << ")\n";
  std::cout << "privacy ledger:\n" << result->accountant.ToString();
  return 0;
}
