// Movie analytics: Ratings(user, movie) ⋈ Movies(movie, genre).
//
// The analyst wants weighted genre statistics over the rating-genre join —
// e.g. "how many ratings land on each genre", "how much do weekday-heavy
// users rate nostalgic genres" — without learning about any single rating.
// One synthetic dataset answers the whole query family (paper §1: answering
// each query separately would exhaust the privacy budget by composition).
//
// Movie popularity is Zipf-distributed, which makes the join-value degrees
// (ratings per movie) skewed — exactly the regime where the sensitivity
// machinery of the paper matters.

#include <iostream>

#include "common/table_printer.h"
#include "core/two_table.h"
#include "core/uniformize.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "relational/generators.h"
#include "relational/join.h"
#include "sensitivity/local_sensitivity.h"

using namespace dpjoin;

namespace {

constexpr int64_t kUsers = 12;
constexpr int64_t kMovies = 24;
constexpr int64_t kGenres = 6;
const char* kGenreNames[kGenres] = {"drama",  "comedy", "action",
                                    "horror", "docu",   "scifi"};

// Per-genre indicator queries over R2 = Movies(movie, genre).
std::vector<TableQuery> GenreQueries(const JoinQuery& query) {
  std::vector<TableQuery> out = {MakeAllOnesQuery(query, 1)};
  const int64_t dom = query.relation_domain_size(1);
  for (int64_t g = 0; g < kGenres; ++g) {
    TableQuery tq;
    tq.label = kGenreNames[g];
    tq.values.assign(static_cast<size_t>(dom), 0.0);
    // R2 tuple code = movie·kGenres + genre (attributes ascending: B, C).
    for (int64_t movie = 0; movie < kMovies; ++movie) {
      tq.values[static_cast<size_t>(movie * kGenres + g)] = 1.0;
    }
    out.push_back(std::move(tq));
  }
  return out;
}

}  // namespace

int main() {
  auto query_or = JoinQuery::Create(
      {{"user", kUsers}, {"movie", kMovies}, {"genre", kGenres}},
      {{"user", "movie"}, {"movie", "genre"}});
  if (!query_or.ok()) {
    std::cerr << query_or.status() << "\n";
    return 1;
  }
  const JoinQuery query = *query_or;

  // Data: Zipf-popular movies; every movie has exactly one genre.
  Instance instance = Instance::Make(query);
  Rng data_rng(2023);
  const std::vector<int64_t> ratings_per_movie =
      ZipfCounts(kMovies, /*total=*/600, /*s=*/1.1);
  for (int64_t movie = 0; movie < kMovies; ++movie) {
    for (int64_t r = 0; r < ratings_per_movie[static_cast<size_t>(movie)];
         ++r) {
      (void)instance.AddTuple(0, {data_rng.UniformInt(0, kUsers - 1), movie},
                              1);
    }
    (void)instance.AddTuple(1, {movie, movie % kGenres}, 1);
  }
  std::cout << "Ratings ⋈ Movies: n = " << instance.InputSize()
            << " records, join size = " << JoinCount(instance)
            << ", hottest movie has " << TwoTableDelta(instance)
            << " ratings (= local sensitivity)\n\n";

  // Workload: genre aggregates on the Movies side × {all-users, per-user
  // weightings} on the Ratings side.
  Rng workload_rng(5);
  std::vector<TableQuery> user_side =
      MakeRandomUniformQueries(query, 0, /*count=*/3, workload_rng);
  auto family_or =
      QueryFamily::Create(query, {user_side, GenreQueries(query)});
  if (!family_or.ok()) {
    std::cerr << family_or.status() << "\n";
    return 1;
  }
  const QueryFamily& family = *family_or;

  const PrivacyParams params(1.0, 1e-5);
  ReleaseOptions options;
  options.pmw_max_rounds = 32;
  Rng rng(99);
  auto result = TwoTable(instance, family, params, options, rng);
  if (!result.ok()) {
    std::cerr << "release failed: " << result.status() << "\n";
    return 1;
  }

  // Genre table: true vs private rating counts (user-side all-ones).
  const auto truth = EvaluateAllOnInstance(family, instance);
  const auto priv = EvaluateAllOnTensor(family, result->synthetic);
  TablePrinter table({"genre", "true ratings", "private estimate", "error"});
  for (int64_t g = 0; g < kGenres; ++g) {
    const int64_t flat = family.index().Encode({0, g + 1});
    table.AddRow({kGenreNames[g],
                  TablePrinter::Num(truth[static_cast<size_t>(flat)]),
                  TablePrinter::Num(priv[static_cast<size_t>(flat)]),
                  TablePrinter::Num(
                      std::abs(truth[static_cast<size_t>(flat)] -
                               priv[static_cast<size_t>(flat)]))});
  }
  table.Print();
  std::cout << "\nℓ∞ error over the full " << family.TotalCount()
            << "-query family: "
            << MaxAbsDifference(truth, priv) << "\n";
  std::cout << "(every further query over the released dataset is free — "
               "post-processing of DP output)\n";
  return 0;
}
