// Quickstart: release a differentially private synthetic dataset for a
// two-table join and answer linear queries from it.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "core/two_table.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "relational/join.h"
#include "relational/join_query.h"

using namespace dpjoin;  // examples only; library code never does this

int main() {
  // 1. Schema: R1(A, B) ⋈ R2(B, C) with finite attribute domains.
  const JoinQuery query = MakeTwoTableQuery(/*dom_a=*/8, /*dom_b=*/8,
                                            /*dom_c=*/8);
  std::cout << "Join query: " << query.ToString() << "\n";

  // 2. Data: an annotated instance (tuple → frequency).
  Instance instance = Instance::Make(query);
  Rng data_rng(7);
  for (int i = 0; i < 400; ++i) {
    const int64_t b = data_rng.UniformInt(0, 7);
    if (instance.AddTuple(0, {data_rng.UniformInt(0, 7), b}, 1).ok() &&
        instance.AddTuple(1, {b, data_rng.UniformInt(0, 7)}, 1).ok()) {
      // both sides grow together so the join is non-trivial
    }
  }
  std::cout << "input size n = " << instance.InputSize()
            << ", join size count(I) = " << JoinCount(instance) << "\n\n";

  // 3. A product family of linear queries Q = Q1 × Q2 (the first member is
  //    always the counting query).
  Rng workload_rng(13);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kPrefix, /*per_table=*/4,
                   workload_rng);
  std::cout << "query family size |Q| = " << family.TotalCount() << "\n";

  // 4. Release: Algorithm 1 (TwoTable) under (ε, δ)-DP.
  const PrivacyParams params(/*eps=*/1.0, /*delta=*/1e-5);
  ReleaseOptions options;
  options.pmw_max_rounds = 24;
  Rng mechanism_rng(42);
  auto result = TwoTable(instance, family, params, options, mechanism_rng);
  if (!result.ok()) {
    std::cerr << "release failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "released synthetic dataset with total mass "
            << result->synthetic.TotalMass() << " (Δ̃ = "
            << result->delta_tilde << ")\n";
  std::cout << "privacy ledger:\n" << result->accountant.ToString() << "\n";

  // 5. Answer every query from the synthetic dataset; compare to truth.
  const auto truth = EvaluateAllOnInstance(family, instance);
  const auto released = EvaluateAllOnTensor(family, result->synthetic);
  double worst = 0.0;
  for (int64_t q = 0; q < family.TotalCount(); ++q) {
    worst = std::max(worst, std::abs(truth[static_cast<size_t>(q)] -
                                     released[static_cast<size_t>(q)]));
  }
  std::cout << "example answers (true vs private):\n";
  for (int64_t q : {int64_t{0}, int64_t{1}, family.TotalCount() / 2,
                    family.TotalCount() - 1}) {
    std::cout << "  " << family.LabelOf(q) << ": "
              << truth[static_cast<size_t>(q)] << " vs "
              << released[static_cast<size_t>(q)] << "\n";
  }
  std::cout << "ℓ∞ workload error α = " << worst << "\n";
  return 0;
}
