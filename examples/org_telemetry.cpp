// Org telemetry: Assignments(team, engineer) ⋈ Budgets(team, project) — a
// hierarchical join (star on `team`) with extreme team-size skew, released
// with the §4.2 machinery: attribute tree, Algorithm 6/7 decomposition into
// degree configurations, and a MultiTable release per configuration.

#include <iostream>

#include "common/table_printer.h"
#include "hierarchical/attribute_tree.h"
#include "hierarchical/uniformize_hierarchical.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "relational/join.h"

using namespace dpjoin;

int main() {
  auto query_or = JoinQuery::Create(
      {{"team", 8}, {"engineer", 32}, {"project", 8}},
      {{"team", "engineer"}, {"team", "project"}});
  if (!query_or.ok()) {
    std::cerr << query_or.status() << "\n";
    return 1;
  }
  const JoinQuery query = *query_or;
  std::cout << "Query: " << query.ToString()
            << (query.IsHierarchical() ? "  (hierarchical)" : "") << "\n";

  auto tree = AttributeTree::Build(query);
  if (!tree.ok()) {
    std::cerr << tree.status() << "\n";
    return 1;
  }
  std::cout << "attribute tree:\n" << tree->ToString(query) << "\n";

  // One mega-team (team 0: 24 engineers), several small teams.
  Instance instance = Instance::Make(query);
  for (int64_t e = 0; e < 24; ++e) {
    (void)instance.AddTuple(0, {0, e}, 1);
  }
  for (int64_t t = 1; t < 8; ++t) {
    (void)instance.AddTuple(0, {t, 24 + t}, 1);
  }
  for (int64_t t = 0; t < 8; ++t) {
    (void)instance.AddTuple(1, {t, t % 8}, 1);
    (void)instance.AddTuple(1, {t, (t + 3) % 8}, 1);
  }
  std::cout << "n = " << instance.InputSize()
            << ", count(I) = " << JoinCount(instance) << "\n\n";

  // Release with hierarchical uniformization.
  const PrivacyParams params(1.0, 1e-2);
  Rng workload_rng(8);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kPrefix, 3, workload_rng);
  ReleaseOptions options;
  options.pmw_max_rounds = 12;
  Rng rng(55);
  auto result =
      UniformizeHierarchical(instance, family, params, options, rng);
  if (!result.ok()) {
    std::cerr << "release failed: " << result.status() << "\n";
    return 1;
  }

  // The degree configurations found by Algorithm 6/7.
  TablePrinter table({"degree configuration", "tuples", "join size",
                      "Δ̃ used", "RS^σ bound"});
  for (const HierBucketInfo& info : result->bucket_info) {
    table.AddRow({info.config.ToString(query), std::to_string(info.input_size),
                  TablePrinter::Num(info.count),
                  TablePrinter::Num(info.delta_tilde),
                  TablePrinter::Num(info.config_rs_bound)});
  }
  table.Print();
  std::cout << "max tuple participation across sub-instances: "
            << result->max_participation << " (Lemma 4.10's log^c n)\n";
  std::cout << "privacy ledger (group factors per Lemma 4.11):\n"
            << result->release.accountant.ToString() << "\n";

  const double error =
      WorkloadError(family, instance, result->release.synthetic);
  std::cout << "ℓ∞ workload error over " << family.TotalCount()
            << " queries: " << error << "\n";
  return 0;
}
