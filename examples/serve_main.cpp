// dpjoin_serve: the long-lived serving process. Reads JSON-lines commands
// from stdin, answers on stdout (protocol reference: src/engine/server.h
// and README "Engine & serving").
//
//   ./build/examples/dpjoin_serve --epsilon=4.0 --delta=0.01 --cache=64
//       [--base-dir=examples/configs] [--ledger=/tmp/ledger.json]
//       [--port=7070 [--batch-window-us=1000] [--batch-max=512]
//        [--max-conns=1024] [--workers=4]]
//
// Flags:
//   --epsilon=E   global privacy cap ε (default 4.0)
//   --delta=D     global privacy cap δ (default 0.01)
//   --cache=N     serving-cache capacity in releases (default 64)
//   --base-dir=P  base directory for relative csv: dataset paths
//   --ledger=P    persist the budget ledger to P: loaded at startup if the
//                 file exists (refusing files whose spend exceeds the cap),
//                 saved after every budget-spending release — a restarted
//                 server resumes with its spent budget intact
//   --port=N      serve TCP on 127.0.0.1:N instead of stdin/stdout (0 =
//                 kernel-assigned; the actual port is printed to stderr as
//                 "dpjoin_serve: listening on 127.0.0.1:<port>")
//   --batch-window-us=U  how long the first pending query waits for
//                 company before its cross-client batch flushes (TCP mode;
//                 default 1000)
//   --batch-max=N flush a batch at N pending queries (default 512; 1
//                 disables coalescing)
//   --max-conns=N refuse connections beyond N concurrent (default 1024)
//   --workers=N   request-execution threads (TCP mode; default 0 =
//                 execute on the event-loop thread). With N >= 1 the
//                 event loop only does I/O + batching and independent
//                 releases' evaluations overlap on the thread pool;
//                 response bytes are identical for any N
//
// Try it interactively:
//   {"cmd": "register", "name": "demo", "source": "generated:zipf(tuples=200,s=1.0,seed=7)", "attributes": ["A:6", "B:4", "C:6"], "relations": ["R1:A,B", "R2:B,C"]}
//   {"cmd": "release", "dataset": "demo", "seed": 3, "spec": "# dpjoin-release-spec v1\nname = demo_release\nattribute = A:6\nattribute = B:4\nattribute = C:6\nrelation = R1:A,B\nrelation = R2:B,C\nepsilon = 1.0\ndelta = 1e-5\nmechanism = auto\nworkload = prefix:3"}
//   {"cmd": "query", "release": "<the id from the release response>", "queries": [0, 1, 2]}
//   {"cmd": "ledger"}
//   {"cmd": "stats"}
//   {"cmd": "shutdown"}

#include <cstdlib>
#include <iostream>
#include <string>

#include "engine/net_server.h"
#include "engine/server.h"

using namespace dpjoin;  // examples only; library code never does this

namespace {

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.compare(0, prefix.size(), prefix) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double epsilon = 4.0;
  double delta = 0.01;
  size_t cache_capacity = 64;
  ServerOptions options;
  bool tcp_mode = false;
  NetServerOptions net_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    try {
      if (ParseFlag(arg, "epsilon", &value)) {
        epsilon = std::stod(value);
      } else if (ParseFlag(arg, "delta", &value)) {
        delta = std::stod(value);
      } else if (ParseFlag(arg, "cache", &value)) {
        cache_capacity = static_cast<size_t>(std::stoull(value));
      } else if (ParseFlag(arg, "base-dir", &value)) {
        options.base_dir = value;
      } else if (ParseFlag(arg, "ledger", &value)) {
        options.ledger_path = value;
      } else if (ParseFlag(arg, "port", &value)) {
        const unsigned long port = std::stoul(value);
        if (port > 65535) throw std::out_of_range("port");
        net_options.port = static_cast<uint16_t>(port);
        tcp_mode = true;
      } else if (ParseFlag(arg, "batch-window-us", &value)) {
        net_options.batch_window_us = std::stoll(value);
      } else if (ParseFlag(arg, "batch-max", &value)) {
        net_options.batch_max = std::stoll(value);
      } else if (ParseFlag(arg, "max-conns", &value)) {
        net_options.max_conns = std::stoll(value);
      } else if (ParseFlag(arg, "workers", &value)) {
        net_options.workers = std::stoll(value);
      } else {
        std::cerr << "unknown flag " << arg << "\n"
                  << "usage: " << argv[0]
                  << " [--epsilon=E] [--delta=D] [--cache=N]"
                     " [--base-dir=P] [--ledger=P] [--port=N]"
                     " [--batch-window-us=U] [--batch-max=N]"
                     " [--max-conns=N] [--workers=N]\n";
        return 2;
      }
    } catch (const std::exception&) {
      std::cerr << "bad value in " << arg << "\n";
      return 2;
    }
  }
  if (!(epsilon > 0.0) || delta < 0.0 || delta > 0.5 || cache_capacity == 0) {
    std::cerr << "need epsilon > 0, delta in [0, 0.5], cache >= 1\n";
    return 2;
  }
  if (tcp_mode &&
      (net_options.batch_window_us < 0 || net_options.batch_max < 1 ||
       net_options.max_conns < 1 || net_options.workers < 0)) {
    std::cerr << "need batch-window-us >= 0, batch-max >= 1, "
                 "max-conns >= 1, workers >= 0\n";
    return 2;
  }

  ReleaseEngine engine(PrivacyParams(epsilon, delta), cache_capacity);
  ReleaseServer server(engine, options);
  if (!server.startup_status().ok()) {
    // An unloadable ledger is fatal: serving without the recorded spend
    // would silently exceed the privacy guarantee.
    std::cerr << "ledger restore failed: " << server.startup_status() << "\n";
    return 1;
  }

  int64_t handled = 0;
  if (tcp_mode) {
    NetServer net(server, net_options);
    const Status started = net.Start();
    if (!started.ok()) {
      std::cerr << "dpjoin_serve: cannot listen: " << started << "\n";
      return 1;
    }
    // CI and scripts parse this line to discover a --port=0 assignment.
    std::cerr << "dpjoin_serve: listening on 127.0.0.1:" << net.port()
              << "\n";
    handled = net.Run();
  } else {
    handled = server.Serve(std::cin, std::cout);
  }
  std::cerr << "dpjoin_serve: handled " << handled << " request(s)\n";
  return 0;
}
