// dpjoin_serve: the long-lived serving process. Reads JSON-lines commands
// from stdin, answers on stdout (protocol reference: src/engine/server.h
// and README "Engine & serving").
//
//   ./build/examples/dpjoin_serve --epsilon=4.0 --delta=0.01 --cache=64
//       [--base-dir=examples/configs] [--ledger=/tmp/ledger.json]
//
// Flags:
//   --epsilon=E   global privacy cap ε (default 4.0)
//   --delta=D     global privacy cap δ (default 0.01)
//   --cache=N     serving-cache capacity in releases (default 64)
//   --base-dir=P  base directory for relative csv: dataset paths
//   --ledger=P    persist the budget ledger to P: loaded at startup if the
//                 file exists (refusing files whose spend exceeds the cap),
//                 saved after every budget-spending release — a restarted
//                 server resumes with its spent budget intact
//
// Try it interactively:
//   {"cmd": "register", "name": "demo", "source": "generated:zipf(tuples=200,s=1.0,seed=7)", "attributes": ["A:6", "B:4", "C:6"], "relations": ["R1:A,B", "R2:B,C"]}
//   {"cmd": "release", "dataset": "demo", "seed": 3, "spec": "# dpjoin-release-spec v1\nname = demo_release\nattribute = A:6\nattribute = B:4\nattribute = C:6\nrelation = R1:A,B\nrelation = R2:B,C\nepsilon = 1.0\ndelta = 1e-5\nmechanism = auto\nworkload = prefix:3"}
//   {"cmd": "query", "release": "<the id from the release response>", "queries": [0, 1, 2]}
//   {"cmd": "ledger"}
//   {"cmd": "stats"}
//   {"cmd": "shutdown"}

#include <cstdlib>
#include <iostream>
#include <string>

#include "engine/server.h"

using namespace dpjoin;  // examples only; library code never does this

namespace {

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.compare(0, prefix.size(), prefix) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double epsilon = 4.0;
  double delta = 0.01;
  size_t cache_capacity = 64;
  ServerOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    try {
      if (ParseFlag(arg, "epsilon", &value)) {
        epsilon = std::stod(value);
      } else if (ParseFlag(arg, "delta", &value)) {
        delta = std::stod(value);
      } else if (ParseFlag(arg, "cache", &value)) {
        cache_capacity = static_cast<size_t>(std::stoull(value));
      } else if (ParseFlag(arg, "base-dir", &value)) {
        options.base_dir = value;
      } else if (ParseFlag(arg, "ledger", &value)) {
        options.ledger_path = value;
      } else {
        std::cerr << "unknown flag " << arg << "\n"
                  << "usage: " << argv[0]
                  << " [--epsilon=E] [--delta=D] [--cache=N]"
                     " [--base-dir=P] [--ledger=P]\n";
        return 2;
      }
    } catch (const std::exception&) {
      std::cerr << "bad value in " << arg << "\n";
      return 2;
    }
  }
  if (!(epsilon > 0.0) || delta < 0.0 || delta > 0.5 || cache_capacity == 0) {
    std::cerr << "need epsilon > 0, delta in [0, 0.5], cache >= 1\n";
    return 2;
  }

  ReleaseEngine engine(PrivacyParams(epsilon, delta), cache_capacity);
  ReleaseServer server(engine, options);
  if (!server.startup_status().ok()) {
    // An unloadable ledger is fatal: serving without the recorded spend
    // would silently exceed the privacy guarantee.
    std::cerr << "ledger restore failed: " << server.startup_status() << "\n";
    return 1;
  }

  const int64_t handled = server.Serve(std::cin, std::cout);
  std::cerr << "dpjoin_serve: handled " << handled << " request(s)\n";
  return 0;
}
