// Sensitivity explorer: how LS, RS^β and smooth bounds behave on join
// instances — the quantities that drive every error bound in the paper.
//
// Walks a random neighbor chain and prints the trajectory of LS (jumpy) vs
// RS^β (smooth by construction), then audits the smoothness property.

#include <iostream>

#include "common/table_printer.h"
#include "dp/privacy_params.h"
#include "relational/generators.h"
#include "relational/join.h"
#include "relational/join_query.h"
#include "sensitivity/local_sensitivity.h"
#include "sensitivity/residual_sensitivity.h"
#include "sensitivity/smooth_bound.h"

using namespace dpjoin;

int main() {
  const PrivacyParams params(1.0, 1e-4);
  const double beta = 1.0 / params.Lambda();
  std::cout << "β = 1/λ = " << beta << " (λ = " << params.Lambda() << ")\n\n";

  // Skew sweep: how the paper's sensitivities react to degree concentration.
  const JoinQuery query = MakeTwoTableQuery(8, 16, 8);
  TablePrinter sweep({"zipf s", "n", "count", "LS = max degree", "RS^beta",
                      "RS/LS"});
  for (double s : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    Rng rng(static_cast<uint64_t>(s * 100) + 1);
    const Instance instance = MakeZipfTwoTableInstance(query, 200, s, rng);
    const double ls = LocalSensitivity(instance);
    const double rs = ResidualSensitivityValue(instance, beta);
    sweep.AddRow({TablePrinter::Num(s), std::to_string(instance.InputSize()),
                  TablePrinter::Num(JoinCount(instance)),
                  TablePrinter::Num(ls), TablePrinter::Num(rs),
                  TablePrinter::Num(rs / std::max(ls, 1.0))});
  }
  sweep.Print();

  // Neighbor-chain trajectory: RS changes by ≤ e^β per step, LS by ±1 (two
  // tables) — but LS's RELATIVE jumps can be unbounded near zero, which is
  // exactly why it cannot calibrate noise directly (paper §1.2).
  std::cout << "\nneighbor chain (one tuple added/removed per step):\n";
  Rng chain_rng(9);
  Instance current = MakeZipfTwoTableInstance(query, 60, 1.0, chain_rng);
  TablePrinter chain({"step", "LS", "RS^beta", "RS ratio vs prev"});
  double prev_rs = ResidualSensitivityValue(current, beta);
  for (int step = 0; step < 10; ++step) {
    current = current.RandomNeighbor(chain_rng);
    const double rs = ResidualSensitivityValue(current, beta);
    chain.AddRow({std::to_string(step),
                  TablePrinter::Num(LocalSensitivity(current)),
                  TablePrinter::Num(rs),
                  TablePrinter::Num(rs / prev_rs)});
    prev_rs = rs;
  }
  chain.Print();
  std::cout << "(ratios stay within [e^-β, e^β] = ["
            << std::exp(-beta) << ", " << std::exp(beta) << "])\n\n";

  // Automated audit of the smooth-upper-bound contract.
  Rng audit_rng(31);
  const Instance start = MakeZipfTwoTableInstance(query, 60, 1.0, audit_rng);
  const SmoothnessAuditResult audit = AuditSmoothUpperBound(
      start,
      [&](const Instance& instance) {
        return ResidualSensitivityValue(instance, beta);
      },
      [](const Instance& instance) { return LocalSensitivity(instance); },
      beta, /*num_chains=*/4, /*chain_length=*/20, audit_rng);
  std::cout << "smoothness audit over " << audit.pairs_checked
            << " neighbor pairs: upper-bound "
            << (audit.upper_bound_held ? "held" : "VIOLATED")
            << ", smoothness "
            << (audit.smoothness_held ? "held" : "VIOLATED")
            << " (worst ratio " << audit.worst_ratio << ", budget e^β = "
            << std::exp(beta) << ")\n";
  return audit.upper_bound_held && audit.smoothness_held ? 0 : 1;
}
