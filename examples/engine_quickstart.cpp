// Engine quickstart: drive every release mechanism from declarative config
// files through the ReleaseEngine — plan, budget-check, release once, then
// serve queries as free post-processing — under one global privacy cap.
//
//   cmake -B build && cmake --build build -j
//   ./build/examples/example_engine_quickstart examples/configs/*.spec
//
// For each config the program prints the planner's choice and rationale,
// the predicted error, the measured workload error of the served answers,
// and the budget-ledger state; afterwards it demonstrates the serving
// cache (an identical spec re-runs free) and budget refusal (a spec
// exceeding the remaining global cap is rejected).

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "query/evaluation.h"
#include "relational/io.h"

using namespace dpjoin;  // examples only; library code never does this

namespace {

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

// Loads the spec's instance the same way the engine does, so the example
// can compare served answers against ground truth.
Result<Instance> LoadInstance(const ReleaseSpec& spec,
                              const std::string& base_dir) {
  std::string path = spec.instance_path;
  if (!path.empty() && path.front() != '/') path = base_dir + "/" + path;
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open '" + path + "'");
  Result<JoinQuery> query = spec.BuildQuery();
  if (!query.ok()) return query.status();
  return ReadInstanceCsv(std::make_shared<JoinQuery>(std::move(query).value()),
                         file);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <config.spec> [more.spec ...]\n"
              << "e.g.:  " << argv[0] << " examples/configs/*.spec\n";
    return 1;
  }

  // One engine, one global privacy cap across every release it commits.
  // (The hierarchical mechanism's measured group-privacy factor can exceed
  // its nominal budget; the cap leaves headroom and the ledger records the
  // measured truth.)
  ReleaseEngine engine(PrivacyParams(/*eps=*/20.0, /*delta=*/0.05));
  ReleaseSpec first_spec;
  std::string first_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string config_path = argv[i];
    std::ifstream config(config_path);
    if (!config) {
      std::cerr << "cannot open config " << config_path << "\n";
      return 1;
    }
    auto spec = ParseReleaseSpec(config);
    if (!spec.ok()) {
      std::cerr << config_path << ": " << spec.status() << "\n";
      return 1;
    }
    const std::string base_dir = DirName(config_path);
    if (i == 1) {
      first_spec = *spec;
      first_dir = base_dir;
    }

    std::cout << "=== " << spec->name << " (" << config_path << ") ===\n";
    auto instance = LoadInstance(*spec, base_dir);
    if (!instance.ok()) {
      std::cerr << "  instance load failed: " << instance.status() << "\n";
      return 1;
    }

    Rng rng(42 + static_cast<uint64_t>(i));
    auto release = engine.Run(*spec, *instance, rng);
    if (!release.ok()) {
      std::cerr << "  release failed: " << release.status() << "\n";
      return 1;
    }
    const ServingHandle& handle = *release->handle;
    std::cout << "  mechanism: " << MechanismName(release->plan.mechanism)
              << "\n  rationale: " << release->plan.rationale << "\n";

    // Serving is pure post-processing: compare against ground truth.
    const auto truth = EvaluateAllOnInstance(handle.family(), *instance);
    const auto served = handle.AnswerAll();
    std::cout << "  |Q| = " << handle.NumQueries()
              << ", measured workload error = "
              << MaxAbsDifference(truth, served)
              << " (predicted ~" << release->plan.predicted_error << ")\n";
    std::cout << "  budget spent so far: (" << engine.ledger().SpentEpsilon()
              << ", " << engine.ledger().SpentDelta() << ") of ("
              << engine.ledger().cap().epsilon << ", "
              << engine.ledger().cap().delta << ")\n";
  }

  // Serving cache: an identical spec is a free post-processing hit.
  {
    std::cout << "=== cache demo: re-submitting " << first_spec.name
              << " ===\n";
    auto instance = LoadInstance(first_spec, first_dir);
    if (!instance.ok()) {
      std::cerr << "  instance load failed: " << instance.status() << "\n";
      return 1;
    }
    const double spent_before = engine.ledger().SpentEpsilon();
    Rng rng(999);
    auto again = engine.Run(first_spec, *instance, rng);
    if (!again.ok()) {
      std::cerr << "  cached re-run failed: " << again.status() << "\n";
      return 1;
    }
    std::cout << "  from_cache = " << (again->from_cache ? "true" : "false")
              << ", budget spent by the re-run = "
              << engine.ledger().SpentEpsilon() - spent_before << "\n";
    if (!again->from_cache) {
      std::cerr << "  expected a cache hit\n";
      return 1;
    }
  }

  // Budget refusal: a spec that overshoots the remaining cap is rejected
  // BEFORE any mechanism runs.
  {
    std::cout << "=== refusal demo: overshooting the remaining budget ===\n";
    ReleaseSpec greedy = first_spec;
    greedy.name = "greedy";
    greedy.epsilon = engine.ledger().RemainingEpsilon() + 1.0;
    auto instance = LoadInstance(greedy, first_dir);
    if (!instance.ok()) {
      std::cerr << "  instance load failed: " << instance.status() << "\n";
      return 1;
    }
    Rng rng(1000);
    auto refused = engine.Run(greedy, *instance, rng);
    if (refused.ok()) {
      std::cerr << "  expected a refusal\n";
      return 1;
    }
    std::cout << "  refused as expected: " << refused.status() << "\n";
  }

  std::cout << "=== final ledger ===\n"
            << engine.ledger().ToString() << "\n"
            << "audit JSON: " << engine.ledger().SerializeJson() << "\n";
  return 0;
}
