// Engine quickstart: drive every release mechanism through the catalog +
// request/response API — register data once, submit declarative specs, pay
// privacy once, then serve queries as free post-processing — under one
// global privacy cap.
//
//   cmake -B build && cmake --build build -j
//   ./build/examples/example_engine_quickstart examples/configs/*.spec
//
// For each config the program resolves the spec's `dataset` source through
// the engine's DataCatalog (csv: files and generated: sources register
// once; the fingerprint is computed at registration, never per
// submission), prints the planner's choice and rationale, the measured
// workload error of the served answers, and the ledger snapshot from the
// response; afterwards it demonstrates the serving cache (re-submitting an
// identical request is a free cache hit) and budget refusal (a spec
// exceeding the remaining global cap is rejected).

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "query/evaluation.h"

using namespace dpjoin;  // examples only; library code never does this

namespace {

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <config.spec> [more.spec ...]\n"
              << "e.g.:  " << argv[0] << " examples/configs/*.spec\n";
    return 1;
  }

  // One engine, one global privacy cap across every release it commits.
  // (The hierarchical mechanism's measured group-privacy factor can exceed
  // its nominal budget; the cap leaves headroom and the ledger records the
  // measured truth.)
  ReleaseEngine engine(PrivacyParams(/*eps=*/20.0, /*delta=*/0.05));
  ReleaseRequest first_request;

  for (int i = 1; i < argc; ++i) {
    const std::string config_path = argv[i];
    std::ifstream config(config_path);
    if (!config) {
      std::cerr << "cannot open config " << config_path << "\n";
      return 1;
    }
    auto spec = ParseReleaseSpec(config);
    if (!spec.ok()) {
      std::cerr << config_path << ": " << spec.status() << "\n";
      return 1;
    }
    ReleaseRequest request;
    request.spec = *spec;
    request.seed = 42 + static_cast<uint64_t>(i);
    request.base_dir = DirName(config_path);
    if (i == 1) first_request = request;

    std::cout << "=== " << spec->name << " (" << config_path << ") ===\n";
    for (const std::string& note : spec->parse_notes) {
      std::cout << "  (deprecation) " << note << "\n";
    }
    auto response = engine.Submit(request);
    if (!response.ok()) {
      std::cerr << "  release failed: " << response.status() << "\n";
      return 1;
    }
    const ServingHandle& handle = *response->handle;
    std::cout << "  dataset:   " << response->dataset_name << "\n"
              << "  mechanism: " << MechanismName(response->plan.mechanism)
              << "\n  rationale: " << response->plan.rationale << "\n";

    // Serving is pure post-processing: compare against ground truth, which
    // the catalog still holds (research reproduction — a production server
    // would never re-touch raw data after release).
    auto dataset = engine.catalog().Get(response->dataset_name);
    if (!dataset.ok()) {
      std::cerr << "  catalog lookup failed: " << dataset.status() << "\n";
      return 1;
    }
    const auto truth =
        EvaluateAllOnInstance(handle.family(), (*dataset)->instance());
    const auto served = handle.AnswerAll();
    std::cout << "  |Q| = " << handle.NumQueries()
              << ", measured workload error = "
              << MaxAbsDifference(truth, served)
              << " (predicted ~" << response->plan.predicted_error << ")\n";
    std::cout << "  budget spent so far: (" << response->ledger.spent_epsilon
              << ", " << response->ledger.spent_delta << ") of ("
              << engine.ledger().cap().epsilon << ", "
              << engine.ledger().cap().delta << ")\n";
  }

  // Serving cache: an identical request is a free post-processing hit —
  // same release id, no new spend, and (because the dataset is already
  // registered) no re-load and no re-fingerprint.
  {
    std::cout << "=== cache demo: re-submitting " << first_request.spec.name
              << " ===\n";
    const double spent_before = engine.ledger().SpentEpsilon();
    const int64_t fingerprints_before = InstanceFingerprintCount();
    first_request.seed = 999;  // the seed does not matter on a cache hit
    auto again = engine.Submit(first_request);
    if (!again.ok()) {
      std::cerr << "  cached re-run failed: " << again.status() << "\n";
      return 1;
    }
    std::cout << "  from_cache = " << (again->from_cache ? "true" : "false")
              << ", budget spent by the re-run = "
              << engine.ledger().SpentEpsilon() - spent_before
              << ", fingerprints recomputed = "
              << InstanceFingerprintCount() - fingerprints_before << "\n";
    if (!again->from_cache) {
      std::cerr << "  expected a cache hit\n";
      return 1;
    }
  }

  // Budget refusal: a request that overshoots the remaining cap is
  // rejected BEFORE any mechanism runs.
  {
    std::cout << "=== refusal demo: overshooting the remaining budget ===\n";
    ReleaseRequest greedy = first_request;
    greedy.spec.name = "greedy";
    greedy.spec.epsilon = engine.ledger().RemainingEpsilon() + 1.0;
    auto refused = engine.Submit(greedy);
    if (refused.ok()) {
      std::cerr << "  expected a refusal\n";
      return 1;
    }
    std::cout << "  refused as expected: " << refused.status() << "\n";
  }

  std::cout << "=== final ledger ===\n"
            << engine.ledger().ToString() << "\n"
            << "audit JSON: " << engine.ledger().SerializeJson() << "\n";
  return 0;
}
