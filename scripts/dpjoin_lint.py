#!/usr/bin/env python3
"""dpjoin_lint.py — repo-specific invariants no off-the-shelf tool knows.

Rules (each violation prints `path:line: [rule] message`):

  layering    src/<layer>/ may only #include from itself and the layers it
              is allowed to depend on. The DAG mirrors src/CMakeLists.txt:
              common at the bottom, engine at the top, no back-edges.
  raw-thread  std::thread outside common/thread_pool.* — all parallelism
              goes through the pool so the block-decomposition bit-identity
              contract holds for every thread count.
  raw-random  rand()/srand()/std::random_device/std::mt19937 outside
              common/rng.h — every random draw flows from a seeded Rng, or
              releases stop being reproducible (and DP noise stops being
              auditable).
  raw-mutex   std::mutex/std::lock_guard/std::unique_lock/
              std::condition_variable outside common/mutex.h — new locks
              must use the annotated Mutex/MutexLock/CondVar wrappers so
              Clang's -Wthread-safety can check the locking discipline.
  stdout      std::cout in src/ libraries — library code reports through
              Status/Result or an ostream parameter, never by printing.
  unchecked-result
              `Foo(...).value()` directly on a freshly returned Result in
              src/ — the error path is silently converted to an abort;
              use DPJOIN_ASSIGN_OR_RETURN or check ok() first.
  raw-socket  socket(/bind(/listen(/accept(/epoll_* outside src/net/ — the
              POSIX networking surface lives in one layer (Socket,
              ListenTcp, AcceptConnection, Poller) so everything above it
              stays platform-free and event-loop discipline is auditable in
              one place.

Suppression: append `dpjoin-lint: allow(<rule>)` in a comment on the
offending line or the line above it. Use sparingly, with justification.

Usage:
  scripts/dpjoin_lint.py              lint the repo (exit 1 on violations)
  scripts/dpjoin_lint.py --self-test  verify every rule fires on a seeded
                                      violation (exit 1 if any rule is dead)
"""

from __future__ import annotations

import re
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Allowed #include dependencies per layer, mirroring the DEPS lists in
# src/CMakeLists.txt. A file in src/<layer>/ may include its own layer and
# anything listed here; everything else is a layering back-edge.
LAYER_DEPS = {
    "common": set(),
    "dp": {"common"},
    "relational": {"common"},
    "query": {"common", "relational"},
    "sensitivity": {"common", "relational"},
    "release": {"common", "dp", "query", "relational"},
    "core": {"common", "dp", "query", "relational", "release", "sensitivity"},
    "hierarchical": {"common", "core", "dp", "query", "relational",
                     "sensitivity"},
    "lowerbound": {"common", "query", "relational"},
    "net": {"common"},
    "engine": {"common", "core", "dp", "hierarchical", "net", "query",
               "relational", "release", "sensitivity"},
}

# Files exempt from specific rules because they IMPLEMENT the primitive the
# rule protects (relative to src/). An entry ending in "/" exempts the
# whole directory.
RAW_THREAD_OK = {"common/thread_pool.h", "common/thread_pool.cc"}
RAW_RANDOM_OK = {"common/rng.h"}
RAW_MUTEX_OK = {"common/mutex.h"}
RAW_SOCKET_OK = {"net/"}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
ALLOW_RE = re.compile(r"dpjoin-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

TOKEN_RULES = [
    # (rule, regex, exempt-set, message)
    ("raw-thread", re.compile(r"\bstd::thread\b(?!::)"), RAW_THREAD_OK,
     "raw std::thread — use common/thread_pool.h (ParallelFor/ParallelSum) "
     "so the bit-identity contract holds"),
    ("raw-random",
     re.compile(r"\b(?:s?rand\s*\(|std::random_device\b|std::mt19937)"),
     RAW_RANDOM_OK,
     "raw randomness — draw from a seeded dpjoin::Rng (common/rng.h) so "
     "releases stay reproducible"),
    ("raw-mutex",
     re.compile(r"\bstd::(?:mutex|lock_guard|unique_lock|scoped_lock|"
                r"condition_variable(?:_any)?)\b"),
     RAW_MUTEX_OK,
     "raw std locking primitive — use the annotated Mutex/MutexLock/CondVar "
     "from common/mutex.h so -Wthread-safety can check it"),
    ("stdout", re.compile(r"\bstd::cout\b"), set(),
     "std::cout in library code — return a Status/Result or take an "
     "ostream& parameter"),
    ("unchecked-result",
     re.compile(r"\)\s*\.value\(\)"), set(),
     "bare .value() on a freshly returned Result — use "
     "DPJOIN_ASSIGN_OR_RETURN or check ok() first"),
    ("raw-socket",
     re.compile(r"\b(?:socket|bind|listen|accept4?|epoll_\w+)\s*\("),
     RAW_SOCKET_OK,
     "raw socket/epoll syscall — the platform surface lives in src/net/ "
     "(Socket/ListenTcp/AcceptConnection/Poller); speak through those "
     "wrappers instead"),
]

# std::move(result).value() is the ASSIGN_OR_RETURN unwrapping idiom, not an
# unchecked call chain.
MOVE_VALUE_RE = re.compile(r"std::move\s*\([^()]*\)\s*\.value\(\)")

# std::bind (and any other std:: name) is not a socket syscall; strip
# qualified names before the raw-socket scan so `::socket(` still fires but
# `std::bind(` does not.
STD_QUALIFIED_RE = re.compile(r"\bstd::\w+")


def strip_noise(line: str) -> str:
    """Removes string literals and // comments so tokens inside them don't
    trigger rules (documentation legitimately mentions std::cout etc.)."""
    out = []
    i, n = 0, len(line)
    in_string = None
    while i < n:
        c = line[i]
        if in_string:
            if c == "\\":
                i += 2
                continue
            if c == in_string:
                in_string = None
            i += 1
            continue
        if c in "\"'":
            in_string = c
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def allowed_rules(lines: list[str], idx: int) -> set[str]:
    """Rules suppressed on line `idx` (0-based): markers on the line itself
    or the line above."""
    allowed: set[str] = set()
    for j in (idx - 1, idx):
        if 0 <= j < len(lines):
            m = ALLOW_RE.search(lines[j])
            if m:
                allowed.update(r.strip() for r in m.group(1).split(","))
    return allowed


def lint_file(path: Path, rel_to_src: str) -> list[tuple[int, str, str]]:
    """Returns (line_number, rule, message) violations for one src/ file."""
    violations = []
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()
    layer = rel_to_src.split("/", 1)[0]
    in_block_comment = False

    for idx, raw_line in enumerate(lines):
        lineno = idx + 1
        allowed = allowed_rules(lines, idx)

        # Block comments: track /* ... */ state so documentation can't
        # trigger token rules. (String-literal and // stripping is per-line.)
        line = raw_line
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        stripped = strip_noise(line)
        start = stripped.find("/*")
        if start >= 0:
            end = stripped.find("*/", start + 2)
            if end < 0:
                in_block_comment = True
                stripped = stripped[:start]
            else:
                stripped = stripped[:start] + stripped[end + 2:]

        include = INCLUDE_RE.match(raw_line)
        if include and layer in LAYER_DEPS and "layering" not in allowed:
            target = include.group(1).split("/", 1)[0]
            if target in LAYER_DEPS and target != layer and \
                    target not in LAYER_DEPS[layer]:
                violations.append((
                    lineno, "layering",
                    f'src/{layer}/ must not include "{include.group(1)}" — '
                    f"{target} is not among its allowed deps "
                    f"({', '.join(sorted(LAYER_DEPS[layer])) or 'none'}); "
                    "see the DAG in src/CMakeLists.txt"))

        for rule, pattern, exempt, message in TOKEN_RULES:
            if rule in allowed or rel_to_src in exempt or any(
                    rel_to_src.startswith(prefix)
                    for prefix in exempt if prefix.endswith("/")):
                continue
            haystack = stripped
            if rule == "unchecked-result":
                haystack = MOVE_VALUE_RE.sub("", haystack)
            elif rule == "raw-socket":
                haystack = STD_QUALIFIED_RE.sub("", haystack)
            if pattern.search(haystack):
                violations.append((lineno, rule, message))
    return violations


def lint_tree(src_root: Path) -> int:
    """Lints every .h/.cc under `src_root`; returns the violation count."""
    count = 0
    for path in sorted(src_root.rglob("*")):
        if path.suffix not in (".h", ".cc", ".cpp"):
            continue
        rel = path.relative_to(src_root).as_posix()
        for lineno, rule, message in lint_file(path, rel):
            print(f"{src_root.name}/{rel}:{lineno}: [{rule}] {message}")
            count += 1
    return count


# --- self-test ------------------------------------------------------------

SEEDED_VIOLATIONS = {
    # rule -> (relative path inside a fake src/, file contents)
    "layering": ("query/bad_layering.h",
                 '#include "engine/engine.h"\n'),
    "raw-thread": ("dp/bad_thread.cc",
                   "void f() { std::thread t([] {}); }\n"),
    "raw-random": ("release/bad_random.cc",
                   "int f() { return rand(); }\n"),
    "raw-mutex": ("engine/bad_mutex.h",
                  "struct S { std::mutex mu_; };\n"),
    "stdout": ("core/bad_stdout.cc",
               'void f() { std::cout << "x"; }\n'),
    "unchecked-result": ("engine/bad_unwrap.cc",
                         "int f() { return G().value(); }\n"),
    "raw-socket": ("engine/bad_socket.cc",
                   "int f() { return ::socket(2, 1, 0); }\n"),
}

CLEAN_FILES = {
    # Legitimate patterns that must NOT fire.
    "query/fine.cc": (
        '#include "relational/join.h"\n'
        "// a comment mentioning std::cout and std::thread is fine\n"
        'const char* s = "std::mutex in a string is fine";\n'
        "auto v = std::move(result).value();  // ASSIGN_OR_RETURN idiom\n"),
    "common/thread_pool.cc": "std::thread worker;\n",
    "common/rng.h": "std::mt19937_64 engine_;\n",
    "common/mutex.h": "std::mutex mu_; std::condition_variable_any cv_;\n",
    "engine/suppressed.cc": (
        "// dpjoin-lint: allow(raw-thread) — justified exception\n"
        "std::thread t;\n"),
    # std::bind is the <functional> helper, not the socket syscall; and the
    # whole net/ directory IS the socket layer.
    "engine/uses_std_bind.cc": "auto f = std::bind(&G::h, &g);\n",
    "net/socket_impl.cc": "int fd = ::socket(2, 1, 0); ::listen(fd, 8);\n",
}


def self_test() -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="dpjoin_lint_selftest_") as tmp:
        src = Path(tmp) / "src"
        for rule, (rel, contents) in SEEDED_VIOLATIONS.items():
            path = src / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(contents)
            found = [r for _, r, _ in lint_file(path, rel)]
            if rule in found:
                print(f"self-test ok: [{rule}] fires on seeded {rel}")
            else:
                print(f"self-test FAIL: [{rule}] did not fire on {rel} "
                      f"(got {found})")
                failures += 1
            path.unlink()
        # Suppression direction: the SAME seeded violation, now carrying its
        # allow marker, must NOT fire — a rule that ignores suppressions is
        # as broken as one that never fires. Both placements are checked.
        for rule, (rel, contents) in SEEDED_VIOLATIONS.items():
            placements = {
                "same-line":
                    contents.rstrip("\n") +
                    f"  // dpjoin-lint: allow({rule})\n",
                "line-above":
                    f"// dpjoin-lint: allow({rule}) — self-test seed\n" +
                    contents,
            }
            for label, text in placements.items():
                path = src / rel
                path.write_text(text)
                found = [r for _, r, _ in lint_file(path, rel)]
                if rule in found:
                    print(f"self-test FAIL: allow({rule}) does not suppress "
                          f"({label}) on {rel}")
                    failures += 1
                else:
                    print(f"self-test ok: allow({rule}) suppresses "
                          f"({label}) on {rel}")
                path.unlink()
        for rel, contents in CLEAN_FILES.items():
            path = src / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(contents)
            found = lint_file(path, rel)
            if found:
                print(f"self-test FAIL: clean file {rel} triggered {found}")
                failures += 1
            else:
                print(f"self-test ok: no false positive on {rel}")
    if failures:
        print(f"self-test: {failures} dead or over-eager rule(s)")
        return 1
    print("self-test: every rule fires exactly where seeded, and every "
          "allow marker suppresses it")
    return 0


def main(argv: list[str]) -> int:
    if "--help" in argv or "-h" in argv:
        print(__doc__)
        return 0
    if "--self-test" in argv:
        return self_test()
    src_root = REPO_ROOT / "src"
    if not src_root.is_dir():
        print(f"dpjoin_lint: no src/ under {REPO_ROOT}", file=sys.stderr)
        return 2
    count = lint_tree(src_root)
    if count:
        print(f"dpjoin_lint: {count} violation(s)")
        return 1
    print("dpjoin_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
