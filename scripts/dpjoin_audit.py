#!/usr/bin/env python3
"""dpjoin_audit.py — AST-grounded semantic invariants for the DP release
engine. Where dpjoin_lint.py bans *tokens* (a regex can see a raw
std::thread), this tool checks *flow*: it builds a per-TU function/call-graph
model of src/ and enforces three repo-specific semantic rules that no
off-the-shelf analyzer knows.

Rules (each violation prints `path:line: [rule] message`):

  privacy-flow     Every noise-sampling call site (Laplace/TruncatedLaplace
                   ::Sample, AddLaplaceNoise, ExponentialMechanism,
                   Rng::Exponential/Gaussian in src/dp, src/release,
                   src/core, src/hierarchical) must live in a function
                   reachable in the call graph FROM a function that records
                   into a PrivacyAccountant (SpendSequential/SpendParallel).
                   A draw that cannot be reached from any recording
                   mechanism is unaccounted noise — it silently voids the
                   (ε,δ) bookkeeping the paper's theorems are about.
                   Functions that ARE the mechanism primitive carry
                   `// dpjoin-audit: mechanism-internal`.

  determinism      Range-for / iterator loops over std::unordered_map or
                   std::unordered_set are banned inside functions on the
                   RELEASE PATH (reachable from an accountant-recording
                   mechanism entry point or from ServingHandle/
                   ReleasedDataset answer surfaces). Iteration order there
                   can reorder noise consumption across stdlib versions,
                   breaking the repo's bit-identity contract. Fix by sorted
                   materialization (collect keys, sort, iterate), or carry
                   a justified allow when the loop is provably
                   order-insensitive (integer max/sum, keyed inserts).

  pool-deadlock    Calling into the thread pool (ParallelFor/
                   ParallelForBlocks/ParallelSum/ThreadPool::Run — or any
                   function that transitively reaches them, e.g.
                   ServingHandle::AnswerAll) while holding a MutexLock, or
                   from a function annotated REQUIRES(mu), is an error:
                   pool workers are shared across all concurrent regions,
                   so a worker that blocks on the caller-held lock stalls
                   every in-flight region (and inverts the lock order when
                   another region's block takes the same lock). The rule
                   survived the concurrent-region rewrite of the pool
                   unchanged — it is the contract, checked at analysis
                   time.

Suppression: `// dpjoin-audit: allow(<rule>)` on the offending line or the
line above (justify in the comment). `// dpjoin-audit: mechanism-internal`
on a function's definition line (or the line above) marks it as a noise
primitive exempt from privacy-flow.

Front-ends (the rules run on the same model either way):
  clang    parses `clang++ -fsyntax-only -Xclang -ast-dump=json` output for
           every src/ TU in compile_commands.json (the tidy preset exports
           one). Ground truth for types and call targets.
  text     a stdlib-only tokenizer/scope-tracker over src/ that recovers
           function definitions, call sites, declared variable types,
           range-for targets, and MutexLock scopes. No toolchain needed;
           used when clang is absent (and by --self-test).

Usage:
  scripts/dpjoin_audit.py                          audit src/ (auto front-end)
  scripts/dpjoin_audit.py --frontend=text|clang    force a front-end
  scripts/dpjoin_audit.py --compile-commands=PATH  clang compile database
  scripts/dpjoin_audit.py --dump-model             print the recovered model
  scripts/dpjoin_audit.py --self-test              seed one violation per
                                                   rule (and one suppressed
                                                   occurrence per rule that
                                                   must NOT fire); exit 1 on
                                                   any dead or over-eager
                                                   rule
"""

from __future__ import annotations

import json
import re
import shutil
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Layers whose noise-sampling call sites the privacy-flow rule audits.
NOISE_LAYERS = ("dp", "release", "core", "hierarchical")

# Noise-sampling callees. Member names ("Sample") match any `x.Sample(...)`
# in the audited layers — in this repo only the Laplace family has a Sample
# member, so the over-approximation is exact in practice.
NOISE_CALLEES = {"Sample", "AddLaplaceNoise", "ExponentialMechanism",
                 "Exponential", "Gaussian"}

# Calls that record a budget spend into a PrivacyAccountant.
ACCOUNTANT_CALLEES = {"SpendSequential", "SpendParallel"}

# Direct thread-pool entry points. Anything that transitively reaches one
# of these is banned under a held MutexLock (pool-deadlock).
POOL_CALLEES = {"ParallelFor", "ParallelForBlocks", "ParallelSum"}
POOL_METHODS = {("ThreadPool", "Run")}

# Serving surfaces that also root the release path for the determinism
# rule (they feed released answers even though they record no spend).
SERVING_ROOT_CLASSES = {"ServingHandle", "ReleasedDataset"}
SERVING_ROOT_METHODS = {"AnswerAll", "AnswerBatch", "Answer"}

UNORDERED_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")
ALLOW_RE = re.compile(
    r"dpjoin-audit:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
MECH_INTERNAL_RE = re.compile(r"dpjoin-audit:\s*mechanism-internal")

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "new",
    "delete", "throw", "catch", "case", "default", "do", "else", "goto",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "decltype", "noexcept", "static_assert", "assert", "defined", "typeid",
    "co_await", "co_return", "co_yield", "alignas", "requires",
}

# ---------------------------------------------------------------------------
# Model
# ---------------------------------------------------------------------------


@dataclass
class CallSite:
    callee: str          # simple name ("Sample", "ParallelFor", ...)
    receiver: str        # receiver text for member calls ("tlap"), else ""
    line: int
    under_lock: bool     # lexically inside a live MutexLock scope


@dataclass
class UnorderedLoop:
    line: int
    range_text: str      # the for-range expression, for the message


@dataclass
class Function:
    name: str            # simple name ("ReadLines")
    qual: str            # qualified ("LineChannel::ReadLines")
    cls: str             # enclosing class ("LineChannel") or ""
    file: str            # repo-relative path ("src/net/line_channel.cc")
    line: int
    calls: list[CallSite] = field(default_factory=list)
    unordered_loops: list[UnorderedLoop] = field(default_factory=list)
    requires_lock: bool = False      # REQUIRES(mu) on decl or definition
    mechanism_internal: bool = False


@dataclass
class Model:
    functions: list[Function] = field(default_factory=list)
    # Names of functions/methods whose return type mentions an unordered
    # container (so `for (x : Foo())` can be resolved).
    unordered_returning: set[str] = field(default_factory=set)
    frontend: str = "text"


def load_allow_map(path: Path) -> dict[int, set[str]]:
    """1-based line -> rules suppressed ON that line. A marker applies to
    its own line, the line below, and — when it sits in a `//` comment
    block — the first code line after the block (so multi-line
    justifications work)."""
    allow: dict[int, set[str]] = {}
    try:
        lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
    except OSError:
        return allow
    for idx, line in enumerate(lines):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        targets = {idx + 1, idx + 2}
        j = idx + 1
        while j < len(lines) and lines[j].lstrip().startswith("//"):
            j += 1
        targets.add(j + 1)
        for target in targets:
            allow.setdefault(target, set()).update(rules)
    return allow


def load_mechanism_internal_lines(path: Path) -> set[int]:
    """Lines (1-based) marked mechanism-internal, plus the line below each
    marker (annotation above the definition line)."""
    marked: set[int] = set()
    try:
        lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
    except OSError:
        return marked
    for idx, line in enumerate(lines):
        if MECH_INTERNAL_RE.search(line):
            marked.update((idx + 1, idx + 2))
    return marked


# ---------------------------------------------------------------------------
# Textual front-end
# ---------------------------------------------------------------------------

TOKEN_RE = re.compile(r"[A-Za-z_]\w*|::|->|[{}();:,<>=&*.\[\]]|[^\sA-Za-z_]")


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving newlines so
    line numbers survive. The annotation scanners read the RAW text."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c in "\"'":
            quote = c
            # Raw strings R"( ... )" would need delimiter tracking; the
            # tree doesn't use them (checked by the self-test controls).
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
            out.append(quote + quote)  # keep a token so `""` stays an expr
        else:
            out.append(c)
            i += 1
    return "".join(out)


@dataclass
class Tok:
    text: str
    line: int


def tokenize(code: str) -> list[Tok]:
    toks: list[Tok] = []
    line = 1
    pos = 0
    for m in TOKEN_RE.finditer(code):
        line += code.count("\n", pos, m.start())
        pos = m.start()
        toks.append(Tok(m.group(0), line))
    return toks


class TextParser:
    """Recovers functions, calls, variable types, range-for targets, and
    MutexLock scopes from one source file. Not a C++ parser — a scope
    tracker tuned to this repo's idiom (clang-format layout, no macros
    that open braces, no raw strings)."""

    def __init__(self, rel_path: str, text: str, model: Model):
        self.rel = rel_path
        self.model = model
        self.raw_lines = text.splitlines()
        self.toks = tokenize(strip_comments_and_strings(text))
        self.mech_lines = set()
        for idx, line in enumerate(self.raw_lines):
            if MECH_INTERNAL_RE.search(line):
                self.mech_lines.update((idx + 1, idx + 2))
        # REQUIRES(...) on declarations: remember simple names so the
        # definition (possibly in another file) inherits the annotation.
        self.requires_names: set[str] = set()

    # -- helpers ----------------------------------------------------------

    def collect_unordered_returners(self) -> None:
        """Function/method names whose declared return type mentions an
        unordered container: scan for `unordered_xxx<...>[&] Name(`."""
        toks = self.toks
        for i, t in enumerate(toks):
            if not UNORDERED_RE.fullmatch(t.text):
                continue
            # Skip the template argument list, then expect [&][Class::]Name (
            j = i + 1
            depth = 0
            if j < len(toks) and toks[j].text == "<":
                depth = 1
                j += 1
                while j < len(toks) and depth > 0:
                    if toks[j].text == "<":
                        depth += 1
                    elif toks[j].text == ">":
                        depth -= 1
                    j += 1
            while j < len(toks) and toks[j].text in ("&", "*", "const"):
                j += 1
            parts = []
            while j + 1 < len(toks) and toks[j].text.isidentifier() and \
                    toks[j + 1].text == "::":
                parts.append(toks[j].text)
                j += 2
            if j + 1 < len(toks) and toks[j].text.isidentifier() and \
                    toks[j + 1].text == "(":
                self.model.unordered_returning.add(toks[j].text)

    def parse(self) -> None:
        self.collect_unordered_returners()
        toks = self.toks
        n = len(toks)
        i = 0
        scope: list[str] = []   # entered named scopes (namespace/class)
        # (kind, name) per open brace: kind in {ns, class, func, other}
        braces: list[tuple[str, str]] = []
        while i < n:
            t = toks[i]
            if t.text == "namespace":
                j = i + 1
                name = ""
                if j < n and toks[j].text.isidentifier():
                    name = toks[j].text
                    j += 1
                if j < n and toks[j].text == "{":
                    braces.append(("ns", name))
                    scope.append(name)
                    i = j + 1
                    continue
                i = j
                continue
            if t.text in ("class", "struct") and i + 1 < n and \
                    toks[i + 1].text.isidentifier():
                # Find the opening brace of the class body (skip base
                # clause); bail at ';' (forward declaration).
                name = toks[i + 1].text
                j = i + 2
                while j < n and toks[j].text not in ("{", ";"):
                    j += 1
                if j < n and toks[j].text == "{":
                    braces.append(("class", name))
                    scope.append(name)
                    i = j + 1
                    continue
                i = j
                continue
            if t.text == "{":
                start = self.find_function_start(i)
                if start is not None:
                    i = self.parse_function(start, i, scope)
                    continue
                braces.append(("other", ""))
                i += 1
                continue
            if t.text == "}":
                if braces:
                    kind, _ = braces.pop()
                    if kind in ("ns", "class") and scope:
                        scope.pop()
                i += 1
                continue
            i += 1

    def find_function_start(self, brace: int) -> int | None:
        """If the `{` at token index `brace` opens a function body, returns
        the index of the function-name token; else None."""
        toks = self.toks
        j = brace - 1
        # Skip trailing const/noexcept/override/attributes/thread-safety
        # macros and ctor init lists back to the closing ')' of the
        # parameter list.
        depth = 0
        while j >= 0:
            text = toks[j].text
            if text == ")":
                depth += 1
            elif text == "(":
                depth -= 1
                if depth == 0:
                    break
            elif depth == 0 and text in ("{", "}", ";"):
                return None
            j -= 1
        if j < 0:
            return None
        # For a ctor init list `: member_(x) {`, keep walking ()-groups
        # back until the group directly follows the function name.
        while True:
            k = j - 1
            if k >= 0 and (toks[k].text.isidentifier() or
                           toks[k].text in (">", "&", "*")):
                break
            if k >= 0 and toks[k].text in (",", ":"):
                # init-list entry: skip `name` then the previous ()-group
                k -= 1
                if k >= 0 and toks[k].text.isidentifier():
                    k -= 1
                depth = 0
                while k >= 0:
                    if toks[k].text == ")":
                        depth += 1
                    elif toks[k].text == "(":
                        depth -= 1
                        if depth == 0:
                            break
                    k -= 1
                if k < 0:
                    return None
                j = k
                continue
            return None
        name_idx = j - 1
        name = self.toks[name_idx].text
        if not name.isidentifier() or name in CPP_KEYWORDS or \
                name in ("and", "or", "not"):
            return None
        # `= [...] (...) {` would be a lambda assigned to a variable; the
        # name token before a lambda's paren is `]`, filtered above.
        return name_idx

    def qualify(self, name_idx: int, scope: list[str]) -> tuple[str, str]:
        """(class, qualified-name) for the function name at name_idx,
        honoring `Class::Name` tokens and the enclosing class scope."""
        toks = self.toks
        parts = [toks[name_idx].text]
        j = name_idx - 1
        while j - 1 >= 0 and toks[j].text == "::" and \
                toks[j - 1].text.isidentifier():
            parts.insert(0, toks[j - 1].text)
            j -= 2
        cls = parts[-2] if len(parts) > 1 else ""
        if not cls:
            for s in reversed(scope):
                if s and not s.startswith("anon"):
                    # namespace scopes end up here too; only classes
                    # matter, and the repo's namespaces are `dpjoin`/
                    # anonymous — filter those.
                    if s != "dpjoin":
                        cls = s
                    break
        qual = "::".join(parts if len(parts) > 1 else
                         ([cls, parts[0]] if cls else [parts[0]]))
        return cls, qual

    def parse_function(self, name_idx: int, brace: int,
                       scope: list[str]) -> int:
        toks = self.toks
        name = toks[name_idx].text
        cls, qual = self.qualify(name_idx, scope)
        fn = Function(name=name, qual=qual, cls=cls, file=self.rel,
                      line=toks[name_idx].line)
        if toks[name_idx].line in self.mech_lines:
            fn.mechanism_internal = True
        # REQUIRES(...) between the parameter list and the body applies to
        # this definition; also remember header declarations seen earlier.
        sig_text = " ".join(t.text for t in toks[name_idx:brace])
        if re.search(r"\bREQUIRES\s*\(", sig_text):
            fn.requires_lock = True
            self.requires_names.add(name)
        if name in self.requires_names:
            fn.requires_lock = True

        # Local variable types: param list + locals as we walk the body.
        var_types: dict[str, str] = {}
        self.scan_params(name_idx, brace, var_types)

        depth = 1
        # Brace depth at which each live MutexLock was declared.
        lock_depths: list[int] = []
        i = brace + 1
        while i < len(toks) and depth > 0:
            t = toks[i]
            if t.text == "{":
                depth += 1
                i += 1
                continue
            if t.text == "}":
                depth -= 1
                while lock_depths and lock_depths[-1] > depth:
                    lock_depths.pop()
                i += 1
                continue
            if t.text == "MutexLock" and i + 1 < len(toks) and \
                    toks[i + 1].text.isidentifier() and i + 2 < len(toks) \
                    and toks[i + 2].text == "(":
                lock_depths.append(depth)
                i += 3
                continue
            if t.text == "for" and i + 1 < len(toks) and \
                    toks[i + 1].text == "(":
                i = self.scan_for_loop(fn, i, var_types)
                continue
            if UNORDERED_RE.fullmatch(t.text):
                i = self.scan_unordered_decl(i, var_types)
                continue
            if t.text in ("auto", "const") or t.text.isidentifier():
                consumed = self.maybe_scan_auto_decl(i, var_types)
                if consumed is not None:
                    i = consumed
                    continue
            if t.text.isidentifier() and i + 1 < len(toks) and \
                    toks[i + 1].text == "(" and t.text not in CPP_KEYWORDS:
                receiver = ""
                if i >= 2 and toks[i - 1].text in (".", "->"):
                    receiver = toks[i - 2].text
                fn.calls.append(CallSite(callee=t.text, receiver=receiver,
                                         line=t.line,
                                         under_lock=bool(lock_depths)))
                i += 1
                continue
            i += 1
        self.model.functions.append(fn)
        return i

    def scan_params(self, name_idx: int, brace: int,
                    var_types: dict[str, str]) -> None:
        """Records `unordered_xxx<...>` parameter names (the last
        identifier before each ',' or the closing ')')."""
        toks = self.toks
        j = name_idx + 1
        if j >= len(toks) or toks[j].text != "(":
            return
        depth = 0
        angle = 0
        seg_has_unordered = False
        last_ident = ""
        while j < brace:
            text = toks[j].text
            if text == "(":
                depth += 1
            elif text == ")":
                depth -= 1
                if depth == 0:
                    if seg_has_unordered and last_ident:
                        var_types[last_ident] = "unordered"
                    break
            elif text == "<":
                angle += 1
            elif text == ">":
                angle = max(0, angle - 1)
            elif text == "," and depth == 1 and angle == 0:
                if seg_has_unordered and last_ident:
                    var_types[last_ident] = "unordered"
                seg_has_unordered = False
                last_ident = ""
            elif UNORDERED_RE.fullmatch(text):
                seg_has_unordered = True
            elif text.isidentifier():
                last_ident = text
            j += 1

    def scan_unordered_decl(self, i: int, var_types: dict[str, str]) -> int:
        """`std::unordered_map<K, V> name ...` — records `name`."""
        toks = self.toks
        j = i + 1
        if j < len(toks) and toks[j].text == "<":
            depth = 1
            j += 1
            while j < len(toks) and depth > 0:
                if toks[j].text == "<":
                    depth += 1
                elif toks[j].text == ">":
                    depth -= 1
                j += 1
        while j < len(toks) and toks[j].text in ("&", "*", "const"):
            j += 1
        if j < len(toks) and toks[j].text.isidentifier():
            var_types[toks[j].text] = "unordered"
            return j + 1
        return i + 1

    def maybe_scan_auto_decl(self, i: int,
                             var_types: dict[str, str]) -> int | None:
        """`[const] auto[&] name = <expr>;` — if <expr> starts with a call
        to an unordered-returning function, `name` is unordered."""
        toks = self.toks
        j = i
        if toks[j].text == "const":
            j += 1
        if j >= len(toks) or toks[j].text != "auto":
            return None
        j += 1
        while j < len(toks) and toks[j].text in ("&", "*"):
            j += 1
        if j + 1 >= len(toks) or not toks[j].text.isidentifier() or \
                toks[j + 1].text != "=":
            return None
        name = toks[j].text
        k = j + 2
        # Walk the initializer looking for `Known(`-style calls.
        while k < len(toks) and toks[k].text != ";":
            if toks[k].text.isidentifier() and k + 1 < len(toks) and \
                    toks[k + 1].text == "(" and \
                    toks[k].text in self.model.unordered_returning:
                var_types[name] = "unordered"
                break
            k += 1
        return j + 1  # resume INSIDE the initializer so calls are recorded

    def scan_for_loop(self, fn: Function, i: int,
                      var_types: dict[str, str]) -> int:
        """Examines `for (...)`: flags range-for over an unordered
        container and `it = x.begin()` iterator loops. Returns the index
        to resume at (just past `for (`, so the header's calls are still
        recorded by the main loop)."""
        toks = self.toks
        # Extract the parenthesized header.
        j = i + 1
        depth = 0
        header: list[Tok] = []
        while j < len(toks):
            if toks[j].text == "(":
                depth += 1
            elif toks[j].text == ")":
                depth -= 1
                if depth == 0:
                    break
            if depth >= 1:
                header.append(toks[j])
            j += 1
        header = header[1:] if header and header[0].text == "(" else header
        texts = [t.text for t in header]
        if ":" in texts and ";" not in texts:
            colon = texts.index(":")
            range_toks = header[colon + 1:]
            if self.range_is_unordered(range_toks, var_types):
                fn.unordered_loops.append(UnorderedLoop(
                    line=toks[i].line,
                    range_text=" ".join(t.text for t in range_toks)))
        elif "begin" in texts:
            # `for (auto it = x.begin(); ...)` — resolve x.
            b = texts.index("begin")
            if b >= 2 and texts[b - 1] in (".", "->"):
                base = texts[b - 2]
                if var_types.get(base) == "unordered":
                    fn.unordered_loops.append(UnorderedLoop(
                        line=toks[i].line,
                        range_text=" ".join(texts[max(0, b - 2):b + 1])))
        return i + 2

    def range_is_unordered(self, range_toks: list[Tok],
                           var_types: dict[str, str]) -> bool:
        if not range_toks:
            return False
        texts = [t.text for t in range_toks]
        # Direct variable (possibly member access off a known var).
        if len(texts) == 1 and var_types.get(texts[0]) == "unordered":
            return True
        # Call expression: Foo(...), obj.entries(), Class::Foo(...).
        for k, text in enumerate(texts):
            if text.isidentifier() and k + 1 < len(texts) and \
                    texts[k + 1] == "(" and \
                    text in self.model.unordered_returning:
                return True
        # `*ptr` / `map_` member named like a tracked variable.
        if texts and var_types.get(texts[-1]) == "unordered":
            return True
        return False


def build_text_model(src_root: Path) -> Model:
    model = Model(frontend="text")
    files = sorted(p for p in src_root.rglob("*")
                   if p.suffix in (".h", ".cc", ".cpp"))
    parsers = []
    for path in files:
        rel = (src_root.name + "/" +
               path.relative_to(src_root).as_posix())
        text = path.read_text(encoding="utf-8", errors="replace")
        parsers.append(TextParser(rel, text, model))
    # Pass 1: return types + REQUIRES names from every file (headers give
    # both for out-of-line definitions).
    for p in parsers:
        p.collect_unordered_returners()
        for idx, line in enumerate(p.raw_lines):
            if re.search(r"\bREQUIRES\s*\(", line):
                m = re.search(r"(\w+)\s*\([^()]*\)[^;{]*\bREQUIRES", line)
                if m:
                    p.requires_names.add(m.group(1))
    shared_requires = set()
    for p in parsers:
        shared_requires.update(p.requires_names)
    # Pass 2: full parse with the global knowledge in place.
    for p in parsers:
        p.requires_names = shared_requires
        p.parse()
    return model


# ---------------------------------------------------------------------------
# Clang front-end
# ---------------------------------------------------------------------------


def find_clang(compile_commands: Path) -> str | None:
    for candidate in ("clang++", "clang"):
        if shutil.which(candidate):
            return candidate
    return None


def clang_args_for_entry(entry: dict) -> list[str]:
    if "arguments" in entry:
        args = list(entry["arguments"])
    else:
        # Naive shell-split is fine for CMake-generated databases (no
        # embedded quotes in this repo's flags).
        args = entry["command"].split()
    out: list[str] = []
    skip = False
    for a in args[1:]:
        if skip:
            skip = False
            continue
        if a in ("-c", "-o"):
            skip = a == "-o"
            continue
        if a.endswith((".cc", ".cpp", ".o")):
            continue
        out.append(a)
    return out


def build_clang_model(src_root: Path, compile_commands: Path) -> Model | None:
    """Best-effort clang AST front-end. Returns None (caller falls back to
    text) when clang or the database is unusable."""
    clang = find_clang(compile_commands)
    if clang is None:
        return None
    try:
        entries = json.loads(compile_commands.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"dpjoin_audit: cannot read {compile_commands}: {exc}",
              file=sys.stderr)
        return None
    model = Model(frontend="clang")
    seen_tus = set()
    seen_fns: set[tuple[str, int, str]] = set()
    for entry in entries:
        src = Path(entry.get("file", ""))
        try:
            rel = src.resolve().relative_to(REPO_ROOT).as_posix()
        except ValueError:
            continue
        if not rel.startswith("src/") or rel in seen_tus:
            continue
        seen_tus.add(rel)
        cmd = ([clang] + clang_args_for_entry(entry) +
               ["-fsyntax-only", "-Xclang", "-ast-dump=json",
                "-Xclang", "-ast-dump-filter=dpjoin", str(src)])
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  cwd=entry.get("directory", str(REPO_ROOT)),
                                  timeout=600)
        except (OSError, subprocess.TimeoutExpired) as exc:
            print(f"dpjoin_audit: clang failed on {rel}: {exc}",
                  file=sys.stderr)
            return None
        if proc.returncode != 0 and not proc.stdout:
            print(f"dpjoin_audit: clang failed on {rel}:\n"
                  f"{proc.stderr[:2000]}", file=sys.stderr)
            return None
        for doc in split_json_documents(proc.stdout):
            walk_clang_decl(doc, model, seen_fns)
    if not model.functions:
        print("dpjoin_audit: clang front-end recovered no functions — "
              "falling back to text", file=sys.stderr)
        return None
    return model


def split_json_documents(text: str) -> list[dict]:
    """-ast-dump-filter emits `Dumping <name>:` headers between JSON
    documents; split and parse each."""
    docs: list[dict] = []
    decoder = json.JSONDecoder()
    i = 0
    n = len(text)
    while i < n:
        brace = text.find("{", i)
        if brace < 0:
            break
        try:
            obj, end = decoder.raw_decode(text, brace)
        except json.JSONDecodeError:
            i = brace + 1
            continue
        if isinstance(obj, dict):
            docs.append(obj)
        i = end
    return docs


def clang_loc(node: dict, state: dict) -> tuple[str, int]:
    """Tracks the 'current file' convention of clang's JSON dumps (loc.file
    is only present when it changes)."""
    loc = node.get("loc") or {}
    if "expansionLoc" in loc:
        loc = loc["expansionLoc"]
    f = loc.get("file")
    if f:
        state["file"] = f
    if "line" in loc:
        state["line"] = loc["line"]
    return state.get("file", ""), state.get("line", 0)


def walk_clang_decl(node: dict, model: Model,
                    seen: set[tuple[str, int, str]],
                    state: dict | None = None) -> None:
    if state is None:
        state = {}
    kind = node.get("kind", "")
    if kind in ("FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
                "CXXDestructorDecl"):
        file, line = clang_loc(node, dict(state))
        rel = relativize_src(file)
        has_body = any(c.get("kind") == "CompoundStmt"
                       for c in node.get("inner", []))
        if rel and has_body:
            name = node.get("name", "")
            key = (rel, node.get("loc", {}).get("line", line), name)
            if key not in seen:
                seen.add(key)
                fn = Function(name=name, qual=name, cls="", file=rel,
                              line=node.get("loc", {}).get("line", line))
                qt = node.get("type", {}).get("qualType", "")
                if UNORDERED_RE.search(qt.split("(")[0]):
                    model.unordered_returning.add(name)
                for c in node.get("inner", []):
                    if "RequiresCapability" in c.get("kind", ""):
                        fn.requires_lock = True
                    if c.get("kind") == "CompoundStmt":
                        walk_clang_body(c, fn, lock_depth=0)
                model.functions.append(fn)
            return  # children handled
    for c in node.get("inner", []) or []:
        if isinstance(c, dict):
            walk_clang_decl(c, model, seen, state)


def relativize_src(file: str) -> str:
    if not file:
        return ""
    p = Path(file)
    try:
        rel = p.resolve().relative_to(REPO_ROOT).as_posix()
    except (ValueError, OSError):
        return ""
    return rel if rel.startswith("src/") else ""


def clang_callee_name(node: dict) -> tuple[str, str]:
    """(simple-name, receiver) of a CallExpr/CXXMemberCallExpr, from the
    first MemberExpr/DeclRefExpr inside the callee expression."""
    def first_ref(n: dict) -> tuple[str, str]:
        k = n.get("kind")
        if k == "MemberExpr":
            name = n.get("name", "")
            return (name.lstrip("->."), "member")
        if k == "DeclRefExpr":
            return (n.get("referencedDecl", {}).get("name", ""), "")
        for c in n.get("inner", []) or []:
            if isinstance(c, dict):
                got = first_ref(c)
                if got[0]:
                    return got
        return ("", "")
    inner = node.get("inner", [])
    if inner:
        return first_ref(inner[0])
    return ("", "")


def walk_clang_body(node: dict, fn: Function, lock_depth: int,
                    state: dict | None = None) -> int:
    """Walks a statement/expression tree; CompoundStmt children see locks
    declared by earlier siblings (lexical MutexLock scope)."""
    if state is None:
        state = {}
    kind = node.get("kind", "")
    if kind == "CompoundStmt":
        local_locks = 0
        for c in node.get("inner", []) or []:
            if not isinstance(c, dict):
                continue
            if c.get("kind") == "DeclStmt":
                for d in c.get("inner", []) or []:
                    if d.get("kind") == "VarDecl" and "MutexLock" in \
                            d.get("type", {}).get("qualType", ""):
                        local_locks += 1
            walk_clang_body(c, fn, lock_depth + local_locks, state)
        return lock_depth
    if kind in ("CallExpr", "CXXMemberCallExpr", "CXXOperatorCallExpr"):
        name, recv = clang_callee_name(node)
        line = node.get("range", {}).get("begin", {}) \
                   .get("expansionLoc", node.get("range", {})
                        .get("begin", {})).get("line", 0)
        if name:
            fn.calls.append(CallSite(callee=name, receiver=recv,
                                     line=line or fn.line,
                                     under_lock=lock_depth > 0))
    if kind == "CXXForRangeStmt":
        for c in node.get("inner", []) or []:
            if isinstance(c, dict) and c.get("kind") == "DeclStmt":
                for d in c.get("inner", []) or []:
                    qt = d.get("type", {}).get("qualType", "")
                    if d.get("kind") == "VarDecl" and "__range" in \
                            d.get("name", "") and UNORDERED_RE.search(qt):
                        line = node.get("range", {}).get("begin", {}) \
                            .get("line", fn.line)
                        fn.unordered_loops.append(UnorderedLoop(
                            line=line, range_text=qt[:80]))
    for c in node.get("inner", []) or []:
        if isinstance(c, dict):
            walk_clang_body(c, fn, lock_depth, state)
    return lock_depth


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


@dataclass
class Violation:
    file: str
    line: int
    rule: str
    message: str


def build_indices(model: Model):
    by_name: dict[str, list[Function]] = {}
    for fn in model.functions:
        by_name.setdefault(fn.name, []).append(fn)
    return by_name


def descendants(roots: set[int], model: Model,
                by_name: dict[str, list[Function]]) -> set[int]:
    """Functions reachable FROM `roots` (indices into model.functions) by
    following call edges resolved by simple name."""
    index_of = {id(fn): i for i, fn in enumerate(model.functions)}
    reach = set(roots)
    work = list(roots)
    while work:
        fi = work.pop()
        for call in model.functions[fi].calls:
            for callee in by_name.get(call.callee, ()):
                ci = index_of[id(callee)]
                if ci not in reach:
                    reach.add(ci)
                    work.append(ci)
    return reach


def reaches_pool(model: Model, by_name: dict[str, list[Function]]) -> set[int]:
    """Functions from which a direct thread-pool entry is reachable
    (ancestors of the pool, computed as a reverse closure)."""
    # Direct pool users.
    direct = set()
    for i, fn in enumerate(model.functions):
        for call in fn.calls:
            if call.callee in POOL_CALLEES:
                direct.add(i)
            if (fn.cls, call.callee) in POOL_METHODS or \
                    call.callee == "Run" and call.receiver in ("pool",):
                direct.add(i)
        if (fn.cls, fn.name) in POOL_METHODS:
            direct.add(i)
    # Reverse edges: caller -> callee becomes callee -> caller.
    callers: dict[str, set[int]] = {}
    for i, fn in enumerate(model.functions):
        for call in fn.calls:
            callers.setdefault(call.callee, set()).add(i)
    pool = set(direct)
    work = list(direct)
    while work:
        fi = work.pop()
        fn = model.functions[fi]
        for ci in callers.get(fn.name, ()):  # anyone calling this name
            if ci not in pool:
                pool.add(ci)
                work.append(ci)
    return pool


def allowed(path_allow: dict[str, dict[int, set[str]]], file: str, line: int,
            rule: str) -> bool:
    return rule in path_allow.get(file, {}).get(line, set())


def run_rules(model: Model, allow_maps: dict[str, dict[int, set[str]]],
              mech_maps: dict[str, set[int]]) -> list[Violation]:
    by_name = build_indices(model)
    violations: list[Violation] = []

    # Honor file-level mechanism-internal markers the front-end may have
    # missed (clang path reads them from source text).
    for fn in model.functions:
        if fn.line in mech_maps.get(fn.file, set()):
            fn.mechanism_internal = True

    recorders = {i for i, fn in enumerate(model.functions)
                 if any(c.callee in ACCOUNTANT_CALLEES for c in fn.calls)}
    accounted = descendants(recorders, model, by_name)

    serving_roots = {
        i for i, fn in enumerate(model.functions)
        if fn.cls in SERVING_ROOT_CLASSES or
        fn.name in SERVING_ROOT_METHODS}
    release_path = descendants(recorders | serving_roots, model, by_name)

    pool_reaching = reaches_pool(model, by_name)
    pool_names = {model.functions[i].name for i in pool_reaching}

    for i, fn in enumerate(model.functions):
        layer = fn.file.split("/")[1] if "/" in fn.file else ""

        # privacy-flow -------------------------------------------------
        if layer in NOISE_LAYERS and not fn.mechanism_internal:
            for call in fn.calls:
                if call.callee not in NOISE_CALLEES:
                    continue
                # Rng::Exponential/Gaussian only count as noise draws when
                # invoked off an rng receiver; Laplace::Sample etc. always.
                if call.callee in ("Exponential", "Gaussian") and \
                        "rng" not in call.receiver.lower() and \
                        model.frontend == "text":
                    continue
                if i in accounted or i in recorders:
                    continue
                if allowed(allow_maps, fn.file, call.line, "privacy-flow"):
                    continue
                violations.append(Violation(
                    fn.file, call.line, "privacy-flow",
                    f"noise draw `{call.callee}` in {fn.qual}() is not "
                    "reachable from any function that records into a "
                    "PrivacyAccountant — unaccounted noise voids the "
                    "(ε,δ) bookkeeping; record the spend on the path to "
                    "this draw, or mark the function "
                    "`// dpjoin-audit: mechanism-internal`"))

        # determinism ---------------------------------------------------
        if i in release_path:
            for loop in fn.unordered_loops:
                if allowed(allow_maps, fn.file, loop.line, "determinism"):
                    continue
                violations.append(Violation(
                    fn.file, loop.line, "determinism",
                    f"{fn.qual}() is on the release path but iterates an "
                    f"unordered container (`{loop.range_text.strip()}`) — "
                    "iteration order can reorder noise consumption across "
                    "stdlib versions; materialize + sort the keys first, "
                    "or justify an order-insensitive "
                    "`// dpjoin-audit: allow(determinism)`"))

        # pool-deadlock -------------------------------------------------
        for call in fn.calls:
            locked = call.under_lock or fn.requires_lock
            if not locked:
                continue
            is_pool_call = (call.callee in POOL_CALLEES or
                            call.callee in SERVING_ROOT_METHODS and
                            call.callee in pool_names or
                            call.callee in pool_names and
                            call.callee not in {fn.name})
            # Only calls that actually lead to the pool are errors; plain
            # locked calls (logging, map ops) are fine.
            if call.callee in POOL_CALLEES:
                reason = f"`{call.callee}` enters the thread pool directly"
            elif is_pool_call and call.callee in pool_names:
                reason = (f"`{call.callee}` transitively reaches the "
                          "thread pool")
            else:
                continue
            if allowed(allow_maps, fn.file, call.line, "pool-deadlock"):
                continue
            held = ("is annotated REQUIRES(mu)" if fn.requires_lock and
                    not call.under_lock else "holds a MutexLock")
            violations.append(Violation(
                fn.file, call.line, "pool-deadlock",
                f"{fn.qual}() {held} while calling into the parallel "
                f"substrate ({reason}) — pool workers are shared across "
                "all concurrent regions, so a worker blocking on the "
                "caller-held lock stalls every in-flight region; release "
                "the lock before fanning out"))

    return violations


# ---------------------------------------------------------------------------
# Driving
# ---------------------------------------------------------------------------


def audit_tree(src_root: Path, frontend: str,
               compile_commands: Path | None,
               dump_model: bool = False) -> int:
    model: Model | None = None
    if frontend in ("auto", "clang"):
        cc = compile_commands
        if cc is None:
            for candidate in ("build-tidy", "build", "build-ci"):
                p = REPO_ROOT / candidate / "compile_commands.json"
                if p.is_file():
                    cc = p
                    break
        if cc is not None and cc.is_file():
            model = build_clang_model(src_root, cc)
        if model is None and frontend == "clang":
            print("dpjoin_audit: clang front-end unavailable (need clang++ "
                  "on PATH and a compile_commands.json; configure any "
                  "preset — CMAKE_EXPORT_COMPILE_COMMANDS is always ON)",
                  file=sys.stderr)
            return 2
    if model is None:
        model = build_text_model(src_root)
    print(f"dpjoin_audit: {model.frontend} front-end, "
          f"{len(model.functions)} functions modelled")

    allow_maps: dict[str, dict[int, set[str]]] = {}
    mech_maps: dict[str, set[int]] = {}
    for path in sorted(src_root.rglob("*")):
        if path.suffix not in (".h", ".cc", ".cpp"):
            continue
        rel = src_root.name + "/" + path.relative_to(src_root).as_posix()
        allow_maps[rel] = load_allow_map(path)
        mech_maps[rel] = load_mechanism_internal_lines(path)

    if dump_model:
        for fn in model.functions:
            print(f"  {fn.file}:{fn.line} {fn.qual} "
                  f"calls={sorted({c.callee for c in fn.calls})} "
                  f"unordered_loops={[l.line for l in fn.unordered_loops]} "
                  f"requires={fn.requires_lock}")

    violations = run_rules(model, allow_maps, mech_maps)
    for v in sorted(violations, key=lambda v: (v.file, v.line)):
        print(f"{v.file}:{v.line}: [{v.rule}] {v.message}")
    if violations:
        print(f"dpjoin_audit: {len(violations)} violation(s)")
        return 1
    print("dpjoin_audit: clean")
    return 0


# ---------------------------------------------------------------------------
# Self-test
# ---------------------------------------------------------------------------

SELF_TEST_FILES = {
    # A mechanism that records; its helper draws noise (OK), a rogue
    # function draws unaccounted noise (must fire), and a suppressed rogue
    # must NOT fire.
    "dp/mechanisms.cc": """
namespace dpjoin {
double DrawCalibrated(Rng& rng) {                 // reached from RunMech
  Laplace lap(1.0);
  return lap.Sample(rng);
}
void RunMech(Rng& rng, PrivacyAccountant& acct) { // the recording root
  acct.SpendSequential("mech", params);
  DrawCalibrated(rng);
}
double RogueDraw(Rng& rng) {                      // privacy-flow violation
  return AddLaplaceNoise(1.0, 1.0, 0.5, rng);
}
double SuppressedRogueDraw(Rng& rng) {
  // dpjoin-audit: allow(privacy-flow) — seeded suppression control
  return AddLaplaceNoise(2.0, 1.0, 0.5, rng);
}
// dpjoin-audit: mechanism-internal
double PrimitiveDraw(Rng& rng) {                  // annotated primitive: OK
  return rng.Exponential();
}
}  // namespace dpjoin
""",
    # The release path iterates an unordered map (must fire); the same
    # loop with an allow must not; an off-path function may iterate freely.
    "release/rounds.cc": """
namespace dpjoin {
void UpdateWeights(const std::unordered_map<long, double>& weights) {
  for (const auto& [k, w] : weights) {            // determinism violation
    Touch(k, w);
  }
  // dpjoin-audit: allow(determinism) — order-insensitive integer max
  for (const auto& [k, w] : weights) {
    TouchMax(k, w);
  }
}
void RunRelease(Rng& rng, PrivacyAccountant& acct) {
  acct.SpendSequential("release", params);
  UpdateWeights(weights_);
}
void OffPathDebugDump(const std::unordered_map<long, double>& weights) {
  for (const auto& [k, w] : weights) {            // NOT on release path
    Touch(k, w);
  }
}
}  // namespace dpjoin
""",
    # Holding a lock across a ParallelFor (must fire), across a function
    # that transitively reaches the pool (must fire), suppressed (not),
    # and the correct drop-the-lock-first shape (not).
    "engine/locked.cc": """
namespace dpjoin {
void FanOut(std::vector<double>* out) {
  ParallelFor(0, 100, 10, [&](long lo, long hi) { Work(lo, hi, out); });
}
void BadLockedFanOut() {
  MutexLock lock(mu_);
  ParallelFor(0, 10, 1, [&](long lo, long hi) { Work(lo, hi); });  // fires
}
void BadLockedIndirect() {
  MutexLock lock(mu_);
  FanOut(&scratch_);                               // fires: reaches pool
}
void SuppressedLockedFanOut() {
  MutexLock lock(mu_);
  // dpjoin-audit: allow(pool-deadlock) — seeded suppression control
  FanOut(&scratch_);
}
void GoodScopedLock() {
  {
    MutexLock lock(mu_);
    queue_.push_back(1);
  }
  FanOut(&scratch_);                               // lock released: OK
}
}  // namespace dpjoin
""",
}

SELF_TEST_EXPECT = {
    "privacy-flow": [("dp/mechanisms.cc", "RogueDraw")],
    "determinism": [("release/rounds.cc", "UpdateWeights")],
    "pool-deadlock": [("engine/locked.cc", "BadLockedFanOut"),
                      ("engine/locked.cc", "BadLockedIndirect")],
}


def self_test() -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="dpjoin_audit_selftest_") as tmp:
        src = Path(tmp) / "src"
        for rel, contents in SELF_TEST_FILES.items():
            path = src / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(contents.replace("// :=", "//"))
        model = build_text_model(src)
        allow_maps = {}
        mech_maps = {}
        for path in sorted(src.rglob("*.cc")):
            rel = "src/" + path.relative_to(src).as_posix()
            allow_maps[rel] = load_allow_map(path)
            mech_maps[rel] = load_mechanism_internal_lines(path)
        violations = run_rules(model, allow_maps, mech_maps)
        by_rule: dict[str, list[Violation]] = {}
        for v in violations:
            by_rule.setdefault(v.rule, []).append(v)

        for rule, expected in SELF_TEST_EXPECT.items():
            got = by_rule.get(rule, [])
            for file, fn_name in expected:
                hits = [v for v in got if v.file == "src/" + file and
                        fn_name in v.message]
                if hits:
                    print(f"self-test ok: [{rule}] fires on seeded "
                          f"{fn_name} in {file}")
                else:
                    print(f"self-test FAIL: [{rule}] did not fire on "
                          f"{fn_name} in {file} (got "
                          f"{[(v.file, v.line) for v in got]})")
                    failures += 1

        # Suppression direction: allow'd/annotated/clean shapes must NOT
        # fire.
        must_not = [
            ("privacy-flow", "SuppressedRogueDraw"),
            ("privacy-flow", "PrimitiveDraw"),
            ("privacy-flow", "DrawCalibrated"),
            ("determinism", "OffPathDebugDump"),
            ("determinism", "TouchMax"),
            ("pool-deadlock", "SuppressedLockedFanOut"),
            ("pool-deadlock", "GoodScopedLock"),
        ]
        for rule, marker in must_not:
            hits = [v for v in by_rule.get(rule, []) if marker in v.message]
            if hits:
                print(f"self-test FAIL: [{rule}] over-fired on {marker}: "
                      f"{hits[0].message[:100]}")
                failures += 1
            else:
                print(f"self-test ok: [{rule}] silent on {marker}")

        total_expected = sum(len(v) for v in SELF_TEST_EXPECT.values())
        if len(violations) != total_expected:
            print(f"self-test FAIL: expected exactly {total_expected} "
                  f"violations, got {len(violations)}:")
            for v in violations:
                print(f"  {v.file}:{v.line}: [{v.rule}]")
            failures += 1
    if failures:
        print(f"self-test: {failures} dead or over-eager rule(s)")
        return 1
    print("self-test: every rule fires exactly where seeded, and every "
          "suppression suppresses")
    return 0


def main(argv: list[str]) -> int:
    if "--help" in argv or "-h" in argv:
        print(__doc__)
        return 0
    if "--self-test" in argv:
        return self_test()
    frontend = "auto"
    compile_commands: Path | None = None
    dump_model = "--dump-model" in argv
    for arg in argv:
        if arg.startswith("--frontend="):
            frontend = arg.split("=", 1)[1]
            if frontend not in ("auto", "clang", "text"):
                print(f"dpjoin_audit: unknown front-end '{frontend}'",
                      file=sys.stderr)
                return 2
        elif arg.startswith("--compile-commands="):
            compile_commands = Path(arg.split("=", 1)[1])
    src_root = REPO_ROOT / "src"
    if not src_root.is_dir():
        print(f"dpjoin_audit: no src/ under {REPO_ROOT}", file=sys.stderr)
        return 2
    return audit_tree(src_root, frontend, compile_commands, dump_model)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
