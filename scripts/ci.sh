#!/usr/bin/env bash
# Tier-1 verify + bench smoke, as CI runs it:
#   1. configure + build with -Wall -Wextra -Werror (the tree is
#      warning-clean — keep it that way),
#   2. ctest over every discovered test,
#   3. a DPJOIN_BENCH_QUICK=1 smoke run of one bench binary, validating the
#      BENCH_*.json it writes.
#
# Usage: scripts/ci.sh [build-dir]   (default: build-ci)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "==> configure (${BUILD_DIR}, warnings-as-errors)"
cmake -B "${BUILD_DIR}" -S . -DDPJOIN_WERROR=ON

echo "==> build (-j ${JOBS})"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "==> ctest"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "==> engine quickstart (checked-in sample configs)"
# Drives every release mechanism through the engine from the declarative
# configs in examples/configs/, including the cache-hit and budget-refusal
# demos — a full end-to-end smoke of the release + serving layer.
"${BUILD_DIR}/examples/example_engine_quickstart" examples/configs/*.spec

echo "==> bench smoke (DPJOIN_BENCH_QUICK=1, DPJOIN_THREADS=2)"
# DPJOIN_THREADS=2 exercises the parallel substrate on every CI run; the
# determinism contract makes the outputs identical to a serial run.
# bench_engine_serving validates BENCH_ENGINE.json (serving throughput +
# ledger/cache verdicts) alongside the existing smoke benches.
SMOKE_DIR="${BUILD_DIR}/bench-smoke"
mkdir -p "${SMOKE_DIR}"
for bench in bench_thm34_delta_floor bench_pmw_single_table \
             bench_engine_serving; do
  DPJOIN_BENCH_QUICK=1 DPJOIN_THREADS=2 DPJOIN_BENCH_JSON_DIR="${SMOKE_DIR}" \
    "${BUILD_DIR}/bench/${bench}"
done

for json in "${SMOKE_DIR}"/BENCH_*.json; do
  echo "==> validating ${json}"
  python3 - "${json}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["schema_version"] == 1, report
assert report["quick_mode"] is True, "quick mode not recorded"
assert report["series"], "no series recorded"
for s in report["series"]:
    assert s["values"], f"empty series {s['name']}"
print(f"ok: {sys.argv[1]} — {len(report['series'])} series, "
      f"{len(report['verdicts'])} verdicts, all_passed={report['all_passed']}")
EOF
done

echo "==> ci.sh: all green"
