#!/usr/bin/env bash
# Tier-1 verify + static analysis + bench smoke, as CI runs it:
#   1. probe required/optional tools (fail or skip EARLY with a clear
#      message, never half-way through a 10-minute build),
#   2. lint: scripts/dpjoin_lint.py self-test + tree scan (layering DAG,
#      raw-thread/random/mutex, stdout, unchecked-result rules), then
#      audit: scripts/dpjoin_audit.py self-test + call-graph scan
#      (privacy-flow, determinism, pool-deadlock) and a 30s/target fuzz
#      smoke over the network-facing parsers after the build,
#   3. configure + build with -Wall -Wextra -Werror (the tree is
#      warning-clean — keep it that way; under Clang this also enables
#      -Wthread-safety, making lock-discipline violations hard errors),
#   4. ctest over every discovered test,
#   5. serving-protocol + ledger-persistence sessions, a real-TCP serve
#      session with a many-client pipelined soak under --workers=2
#      (byte-diffed against the stdio path), bench smoke with BENCH_*.json
#      validation including the concurrent parallel-region verdicts, ASan
#      suites,
#   6. tidy: clang-tidy over src/ via compile_commands.json (skipped with a
#      message when clang-tidy is not installed),
#   7. tsan: ThreadSanitizer build + `ctest -L tsan` over the concurrency
#      suites (thread_pool, catalog, ledger, serving, server,
#      parallel_determinism, net primitives, query batcher, net server).
#
# Usage: scripts/ci.sh [build-dir]   (default: build-ci)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "==> tool probe"
# Required tools first: better one clear line now than a bash "command not
# found" after the build already ran for minutes.
for tool in cmake python3; do
  if ! command -v "${tool}" > /dev/null 2>&1; then
    echo "ERROR: required tool '${tool}' is not installed (ci.sh uses it" \
         "for the build and for validating bench/server JSON output)" >&2
    exit 1
  fi
done
# Optional tools degrade to a skip, announced here so the log says up front
# which stages will run.
HAVE_CLANG_TIDY=0
if command -v clang-tidy > /dev/null 2>&1 && command -v clang++ > /dev/null 2>&1; then
  HAVE_CLANG_TIDY=1
  echo "    clang-tidy: $(clang-tidy --version | head -2 | tail -1)"
else
  echo "    clang-tidy: not installed — the tidy stage will be SKIPPED"
fi
HAVE_CLANG_FORMAT=0
if command -v clang-format > /dev/null 2>&1; then
  HAVE_CLANG_FORMAT=1
  echo "    clang-format: $(clang-format --version)"
else
  echo "    clang-format: not installed — format check will be SKIPPED"
fi

echo "==> lint (scripts/dpjoin_lint.py)"
# Self-test first: a linter whose rules silently died would pass any tree.
python3 scripts/dpjoin_lint.py --self-test
python3 scripts/dpjoin_lint.py

echo "==> audit (scripts/dpjoin_audit.py — privacy-flow, determinism, pool-deadlock)"
# Semantic rules over the call graph: noise draws must reach the
# accountant, release-path loops must not iterate unordered containers,
# and pool entry points must never run under a held lock. The frontend
# auto-selects: clang AST JSON when clang + a compile database are
# available, the built-in textual parser otherwise.
python3 scripts/dpjoin_audit.py --self-test
python3 scripts/dpjoin_audit.py
if [[ "${HAVE_CLANG_FORMAT}" == 1 ]]; then
  echo "==> clang-format check (src/)"
  find src -name '*.h' -o -name '*.cc' | xargs clang-format --dry-run -Werror \
    || { echo "ERROR: clang-format violations (run clang-format -i)"; exit 1; }
fi

echo "==> configure (${BUILD_DIR}, warnings-as-errors)"
cmake -B "${BUILD_DIR}" -S . -DDPJOIN_WERROR=ON

echo "==> build (-j ${JOBS})"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "==> ctest"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "==> fuzz smoke (30s per target, corpus + bounded mutation)"
# Every fuzz target replays its seed corpus and then fuzzes briefly — with
# libFuzzer when clang built the targets, with the deterministic built-in
# mutation runner otherwise. Findings land in fuzz/regressions/<target>/
# and are replayed forever after by fuzz_regression_test under plain ctest.
if [[ -x "${BUILD_DIR}/fuzz/fuzz_json" ]]; then
  for target in fuzz_json fuzz_release_spec fuzz_line_framer; do
    corpus="fuzz/corpus/${target#fuzz_}"
    regressions="fuzz/regressions/${target#fuzz_}"
    echo "    ${target} over ${corpus}"
    "${BUILD_DIR}/fuzz/${target}" -runs=20000 -max_total_time=30 \
      "${corpus}" "${regressions}"
  done
else
  echo "SKIPPED: fuzz targets not built (DPJOIN_BUILD_FUZZERS=OFF or" \
       "sanitizer-incompatible configuration)"
fi

echo "==> engine quickstart (checked-in sample configs)"
# Drives every release mechanism through the catalog + Submit API from the
# declarative configs in examples/configs/ (csv: and generated: dataset
# sources), including the cache-hit and budget-refusal demos — a full
# end-to-end smoke of the release + serving layer.
"${BUILD_DIR}/examples/example_engine_quickstart" examples/configs/*.spec

echo "==> dpjoin_serve scripted session (register -> release -> query -> ledger)"
# A full protocol round-trip through the long-lived server: register a
# generated dataset, pay for one release, re-release it as a cache hit,
# query the handle, audit the ledger, shut down. Every response line must
# be valid JSON with the expected semantics (validated below).
SERVE_OUT="$(mktemp)"
"${BUILD_DIR}/examples/dpjoin_serve" --epsilon=4 --delta=0.01 > "${SERVE_OUT}" <<'EOF'
{"cmd": "register", "name": "ci_demo", "source": "generated:zipf(tuples=200,s=1.0,seed=7)", "attributes": ["A:6", "B:4", "C:6"], "relations": ["R1:A,B", "R2:B,C"]}
{"cmd": "release", "dataset": "ci_demo", "seed": 3, "spec": "# dpjoin-release-spec v1\nname = ci_release\nattribute = A:6\nattribute = B:4\nattribute = C:6\nrelation = R1:A,B\nrelation = R2:B,C\nepsilon = 1.0\ndelta = 1e-5\nmechanism = auto\nworkload = prefix:3"}
{"cmd": "release", "dataset": "ci_demo", "seed": 99, "spec": "# dpjoin-release-spec v1\nname = ci_release\nattribute = A:6\nattribute = B:4\nattribute = C:6\nrelation = R1:A,B\nrelation = R2:B,C\nepsilon = 1.0\ndelta = 1e-5\nmechanism = auto\nworkload = prefix:3"}
{"cmd": "ledger"}
{"cmd": "stats"}
{"cmd": "shutdown"}
EOF
python3 - "${SERVE_OUT}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    responses = [json.loads(line) for line in f if line.strip()]
assert len(responses) == 6, f"expected 6 responses, got {len(responses)}"
assert all(r["ok"] for r in responses), responses
register, first, second, ledger, stats, shutdown = responses
assert register["cmd"] == "register" and register["input_size"] == 400
assert first["cmd"] == "release" and not first["from_cache"]
assert second["from_cache"], "repeated release must be a cache hit"
assert second["release"] == first["release"], "same release id"
assert second["spent"] == first["spent"], "cache hit must not spend budget"
assert ledger["ledger"]["total"]["epsilon"] == first["spent"]["epsilon"]
assert stats["fingerprints_computed"] == 1, "one dataset, one fingerprint"
assert stats["cache"]["hits"] >= 1 and stats["datasets"] == 1
assert shutdown["cmd"] == "shutdown"
print(f"ok: dpjoin_serve session — release {first['release']} via "
      f"{first['mechanism']}, cache hit with zero extra spend, "
      f"{stats['fingerprints_computed']} fingerprint computation")
EOF
rm -f "${SERVE_OUT}"

echo "==> dpjoin_serve ledger persistence across restart"
# The server saves its budget ledger after each paid release; a restarted
# server must refuse to re-spend what the file records.
LEDGER_FILE="$(mktemp -u).ledger.json"
printf '%s\n' \
  '{"cmd": "register", "name": "d", "source": "generated:uniform(tuples=100,seed=2)", "attributes": ["A:6", "B:4", "C:6"], "relations": ["R1:A,B", "R2:B,C"]}' \
  '{"cmd": "release", "dataset": "d", "seed": 1, "spec": "# dpjoin-release-spec v1\nname = persisted\nattribute = A:6\nattribute = B:4\nattribute = C:6\nrelation = R1:A,B\nrelation = R2:B,C\nepsilon = 2.0\ndelta = 1e-5\nmechanism = laplace\nworkload = prefix:2"}' \
  | "${BUILD_DIR}/examples/dpjoin_serve" --epsilon=2.5 --delta=0.01 --ledger="${LEDGER_FILE}" > /dev/null
RESTART_OUT="$(printf '%s\n' \
  '{"cmd": "register", "name": "d", "source": "generated:uniform(tuples=100,seed=2)", "attributes": ["A:6", "B:4", "C:6"], "relations": ["R1:A,B", "R2:B,C"]}' \
  '{"cmd": "release", "dataset": "d", "seed": 2, "spec": "# dpjoin-release-spec v1\nname = greedy\nattribute = A:6\nattribute = B:4\nattribute = C:6\nrelation = R1:A,B\nrelation = R2:B,C\nepsilon = 2.0\ndelta = 1e-5\nmechanism = laplace\nworkload = prefix:2"}' \
  | "${BUILD_DIR}/examples/dpjoin_serve" --epsilon=2.5 --delta=0.01 --ledger="${LEDGER_FILE}")"
echo "${RESTART_OUT}" | python3 -c '
import json, sys
lines = [json.loads(l) for l in sys.stdin if l.strip()]
refused = lines[1]
assert not refused["ok"] and "FailedPrecondition" in refused["error"], refused
print("ok: restarted server refused to overspend the persisted ledger")
'
rm -f "${LEDGER_FILE}"

echo "==> dpjoin_serve TCP session + many-client pipelined soak (--workers=2)"
# The TCP front-end must answer byte-identically to the stdio path: a
# scripted session learns the (deterministic) release id over stdio, then
# eight concurrent clients pipeline the same query lines over a real
# loopback socket and byte-diff every response. The stats response must
# show the cross-client batcher coalescing (engine calls < query requests).
# --workers=2 routes every parsed request through the multi-worker
# execution stage, so the soak also proves worker-mode byte-identity.
TCP_ERR="$(mktemp)"
"${BUILD_DIR}/examples/dpjoin_serve" --epsilon=4 --delta=0.01 --port=0 \
  --batch-window-us=1000 --workers=2 2> "${TCP_ERR}" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "${TCP_ERR}" && break
  sleep 0.1
done
TCP_PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "${TCP_ERR}")"
python3 - "${BUILD_DIR}/examples/dpjoin_serve" "${TCP_PORT}" <<'EOF'
import json, socket, subprocess, sys, threading

binary, port = sys.argv[1], int(sys.argv[2])
register = ('{"cmd": "register", "name": "ci_tcp", "source": '
            '"generated:zipf(tuples=200,s=1.0,seed=7)", '
            '"attributes": ["A:6", "B:4", "C:6"], '
            '"relations": ["R1:A,B", "R2:B,C"]}')
release = ('{"cmd": "release", "dataset": "ci_tcp", "seed": 3, "spec": '
           '"# dpjoin-release-spec v1\\nname = ci_tcp\\nattribute = A:6\\n'
           'attribute = B:4\\nattribute = C:6\\nrelation = R1:A,B\\n'
           'relation = R2:B,C\\nepsilon = 1.0\\ndelta = 1e-5\\n'
           'mechanism = auto\\nworkload = prefix:3"}')

# Stdio pass 1: learn the deterministic release id.
out = subprocess.run([binary, "--epsilon=4", "--delta=0.01"],
                     input=register + "\n" + release + "\n",
                     capture_output=True, text=True, check=True).stdout
released = json.loads(out.splitlines()[1])
assert released["ok"], released
rid = released["release"]
queries = [
    '{"cmd": "query", "release": "%s", "all": true}' % rid,
    '{"cmd": "query", "release": "%s", "queries": [0, 1]}' % rid,
    '{"cmd": "query", "release": "%s", "queries": [999]}' % rid,  # error
]

# Stdio pass 2: the reference bytes for every query line.
script = "\n".join([register, release] + queries) + "\n"
out = subprocess.run([binary, "--epsilon=4", "--delta=0.01"], input=script,
                     capture_output=True, text=True, check=True).stdout
expected = out.splitlines()[2:5]

# One admin connection sets up the identical session over TCP.
admin = socket.create_connection(("127.0.0.1", port)).makefile(
    "rw", newline="\n")
admin.write(register + "\n")
admin.write(release + "\n")
admin.flush()
assert json.loads(admin.readline())["ok"]
tcp_released = json.loads(admin.readline())
assert tcp_released["release"] == rid, "TCP release id must match stdio"

CLIENTS, ROUNDS = 8, 25
errors = []

def soak(k):
    try:
        sock = socket.create_connection(("127.0.0.1", port))
        f = sock.makefile("rw", newline="\n")
        for _ in range(ROUNDS):  # fully pipelined: all requests leave first
            for q in queries:
                f.write(q + "\n")
        f.flush()
        for i in range(ROUNDS * len(queries)):
            got = f.readline().rstrip("\n")
            want = expected[i % len(queries)]
            if got != want:
                errors.append("client %d line %d: %r != %r"
                              % (k, i, got, want))
                return
        sock.close()
    except Exception as exc:  # noqa: BLE001 — any failure fails the stage
        errors.append("client %d: %r" % (k, exc))

threads = [threading.Thread(target=soak, args=(k,)) for k in range(CLIENTS)]
for t in threads:
    t.start()
for t in threads:
    t.join()
assert not errors, errors[:3]

admin.write('{"cmd": "stats"}\n')
admin.flush()
serving = json.loads(admin.readline())["serving"]
# Two of the three pipelined query lines per round succeed ([999] is an
# out-of-range error, which the serving stats do not count).
assert serving["query_requests"] == CLIENTS * ROUNDS * 2, serving
assert serving["engine_calls"] < serving["query_requests"], (
    "no coalescing observed: %s" % serving)
assert serving["workers"] == 2, "stats must report --workers: %s" % serving
admin.write('{"cmd": "shutdown"}\n')
admin.flush()
assert json.loads(admin.readline())["ok"]
print("ok: TCP soak — %d clients x %d pipelined requests byte-identical "
      "to stdio; %d engine calls served %d query requests"
      % (CLIENTS, ROUNDS * len(queries), serving["engine_calls"],
         serving["query_requests"]))
EOF
wait "${SERVE_PID}"
rm -f "${TCP_ERR}"

echo "==> bench smoke (DPJOIN_BENCH_QUICK=1, DPJOIN_THREADS=2)"
# DPJOIN_THREADS=2 exercises the parallel substrate on every CI run; the
# determinism contract makes the outputs identical to a serial run.
# bench_engine_serving validates BENCH_ENGINE.json (serving throughput +
# ledger/cache verdicts) alongside the existing smoke benches;
# bench_net_serving adds BENCH_NET.json (TCP qps vs client count, with the
# batched >= 2x one-request-per-batch verdict).
SMOKE_DIR="${BUILD_DIR}/bench-smoke"
mkdir -p "${SMOKE_DIR}"
for bench in bench_thm34_delta_floor bench_pmw_single_table \
             bench_thm15_multi_table bench_engine_serving \
             bench_net_serving; do
  DPJOIN_BENCH_QUICK=1 DPJOIN_THREADS=2 DPJOIN_BENCH_JSON_DIR="${SMOKE_DIR}" \
    "${BUILD_DIR}/bench/${bench}"
done

for json in "${SMOKE_DIR}"/BENCH_*.json; do
  echo "==> validating ${json}"
  python3 - "${json}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["schema_version"] == 1, report
assert report["quick_mode"] is True, "quick mode not recorded"
assert report["series"], "no series recorded"
for s in report["series"]:
    assert s["values"], f"empty series {s['name']}"
print(f"ok: {sys.argv[1]} — {len(report['series'])} series, "
      f"{len(report['verdicts'])} verdicts, all_passed={report['all_passed']}")
EOF
done

echo "==> factored PMW round-loop speedup verdicts"
# The factored round loop (cached evaluator + sparse sub-box updates) must
# be measured >= 3x faster per round than the retained oracle loop, and
# match it within tolerance — as PASS verdicts in BENCH_E9/BENCH_THM15.
for json in "${SMOKE_DIR}/BENCH_E9.json" "${SMOKE_DIR}/BENCH_THM15.json"; do
  python3 - "${json}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
speedups = [s for s in report["series"] if s["name"] == "round.speedup"]
assert speedups and speedups[0]["values"], "no round.speedup series recorded"
verdicts = [v for v in report["verdicts"] if ">= 3x faster" in v["message"]]
assert verdicts, "no factored >= 3x speedup verdict recorded"
assert all(v["pass"] for v in verdicts), verdicts
tolerance = [v for v in report["verdicts"] if "matches the oracle loop" in v["message"]]
assert tolerance and all(v["pass"] for v in tolerance), tolerance
print(f"ok: {sys.argv[1]} — factored round loop "
      f"{speedups[0]['values'][0]:.2f}x the oracle, within tolerance")
EOF
done

echo "==> concurrent parallel-region verdicts (BENCH_NET)"
# bench_net_serving sweeps --workers at a fixed client count and times two
# concurrent ParallelSum regions against the same work serialized. Both the
# bit-identity verdict and the overlap verdict (speedup on multi-core, mere
# no-regression on one core) must PASS on every CI run.
python3 - "${SMOKE_DIR}/BENCH_NET.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
series = {s["name"]: s["values"] for s in report["series"]}
assert series.get("concurrency.workers"), "no concurrency.workers series"
assert series.get("concurrency.qps"), "no concurrency.qps series"
speedup = series.get("concurrency.region_overlap_speedup")
assert speedup, "no concurrency.region_overlap_speedup series"
concurrency = [v for v in report["verdicts"]
               if "concurrent" in v["message"]]
assert concurrency, "no concurrent-region verdicts recorded"
assert all(v["pass"] for v in concurrency), concurrency
print(f"ok: {sys.argv[1]} — region overlap ratio {speedup[0]:.2f}x, "
      f"{len(concurrency)} concurrency verdicts PASS")
EOF

echo "==> ASan run of the factored-loop / determinism suites"
# The sparse/fused hot paths and the product-form (FactoredTensor) backing
# index raw storage directly; run their suites under AddressSanitizer on
# every CI pass. factored_tensor_test + the ProductBacking suites inside
# pmw_factored_test cover the dense-vs-factored equivalence contract.
ASAN_DIR="${BUILD_DIR}-asan"
cmake -B "${ASAN_DIR}" -S . -DDPJOIN_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build "${ASAN_DIR}" -j "${JOBS}" --target \
  workload_evaluator_test pmw_factored_test parallel_determinism_test \
  dense_tensor_test factored_tensor_test serving_test
for suite in workload_evaluator_test pmw_factored_test \
             parallel_determinism_test dense_tensor_test \
             factored_tensor_test serving_test; do
  "${ASAN_DIR}/tests/${suite}" --gtest_brief=1
done

echo "==> clang-tidy over src/ (bugprone-*, concurrency-*, performance-*)"
if [[ "${HAVE_CLANG_TIDY}" == 1 ]]; then
  # A Clang compile database, so clang-tidy sees the same flags a tidy-preset
  # build would (the main ${BUILD_DIR} database may be GCC-flavored). This
  # configure also runs the thread_annotations_compile_test registration
  # (Clang has -Wthread-safety), and the build makes every lock-discipline or
  # nodiscard violation a hard -Werror failure.
  TIDY_DIR="${BUILD_DIR}-tidy"
  cmake -B "${TIDY_DIR}" -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DDPJOIN_WERROR=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "${TIDY_DIR}" -j "${JOBS}"
  ctest --test-dir "${TIDY_DIR}" --output-on-failure \
    -R thread_annotations_compile_test
  # Re-run the semantic audit on the REAL clang AST now that a Clang
  # compile database exists — the text frontend earlier is the fallback,
  # this is the grounded pass.
  python3 scripts/dpjoin_audit.py --frontend=clang \
    --compile-commands="${TIDY_DIR}/compile_commands.json"
  mapfile -t TIDY_SOURCES < <(find src -name '*.cc' | sort)
  if command -v run-clang-tidy > /dev/null 2>&1; then
    run-clang-tidy -p "${TIDY_DIR}" -quiet -j "${JOBS}" "${TIDY_SOURCES[@]}"
  else
    clang-tidy -p "${TIDY_DIR}" --quiet "${TIDY_SOURCES[@]}"
  fi
else
  echo "SKIPPED: clang-tidy/clang++ not installed (probe above); install" \
       "clang + clang-tidy to run the tidy stage locally"
fi

echo "==> TSan run of the concurrency suites (ctest -L tsan)"
# The suites that hammer the mutex-holding classes (ThreadPool,
# DataCatalog, BudgetLedger, ReleaseCache/ServingHandle, ReleaseServer, the
# cross-thread determinism contract, and the TCP front-end: net primitives,
# QueryBatcher, NetServer with concurrent loopback clients) run under
# ThreadSanitizer on every CI pass — the TSan coverage is a reproducible
# gate, not an anecdote. Scoped to the labelled suites to keep CI
# wall-clock reasonable.
TSAN_DIR="${BUILD_DIR}-tsan"
cmake -B "${TSAN_DIR}" -S . -DDPJOIN_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=Debug -DDPJOIN_BUILD_BENCH=OFF \
  -DDPJOIN_BUILD_EXAMPLES=OFF > /dev/null
cmake --build "${TSAN_DIR}" -j "${JOBS}" --target \
  thread_pool_test catalog_test budget_ledger_test serving_test \
  server_test parallel_determinism_test net_primitives_test \
  query_batcher_test net_server_test
ctest --test-dir "${TSAN_DIR}" --output-on-failure -L tsan -j "${JOBS}"

echo "==> ci.sh: all green"
