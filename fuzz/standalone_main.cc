// Fallback driver for toolchains without libFuzzer (GCC): replays every
// file in the corpus/regression paths given on the command line, then runs
// a bounded deterministic mutation loop over the seeds (SplitMix64-driven
// byte flips, truncations, duplications and splices). No coverage
// feedback — libFuzzer under clang remains the real fuzzer; this keeps the
// targets exercised (and the regression corpus replayed) everywhere.
//
// CLI: fuzz_<target> [-runs=N] [libFuzzer-style -flags ignored] PATH...
// where PATH is a corpus file or directory. Exit 0 = no crash (property
// failures abort(), matching libFuzzer semantics).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<std::string> CollectInputs(const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::string> in_dir;
      for (const auto& entry :
           std::filesystem::directory_iterator(path, ec)) {
        if (entry.is_regular_file()) in_dir.push_back(entry.path().string());
      }
      std::sort(in_dir.begin(), in_dir.end());  // deterministic replay order
      files.insert(files.end(), in_dir.begin(), in_dir.end());
    } else if (std::filesystem::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      std::fprintf(stderr, "standalone fuzz: skipping %s (not found)\n",
                   path.c_str());
    }
  }
  return files;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void RunOne(const std::string& bytes) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
}

std::string Mutate(const std::string& seed, uint64_t* rng) {
  std::string out = seed;
  const uint64_t op = SplitMix64(rng) % 5;
  if (out.empty() || op == 0) {  // insert
    const size_t at = out.empty() ? 0 : SplitMix64(rng) % (out.size() + 1);
    out.insert(at, 1, static_cast<char>(SplitMix64(rng) & 0xff));
    return out;
  }
  const size_t at = SplitMix64(rng) % out.size();
  switch (op) {
    case 1:  // byte flip
      out[at] = static_cast<char>(out[at] ^ (1u << (SplitMix64(rng) % 8)));
      break;
    case 2:  // truncate
      out.resize(at);
      break;
    case 3:  // duplicate a span
      out.insert(at, out.substr(at, 1 + SplitMix64(rng) % 16));
      break;
    case 4:  // overwrite with interesting byte
      out[at] = "\x00\x0a\x0d\x22\x5c\x7f\xff#=:"[SplitMix64(rng) % 10];
      break;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  long runs = 2000;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "-runs=", 6) == 0) {
      runs = std::atol(argv[i] + 6);
    } else if (argv[i][0] == '-') {
      // Ignore libFuzzer flags (-max_total_time=..., -seed=...) so CI can
      // use one command shape for both drivers.
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  const std::vector<std::string> files = CollectInputs(paths);
  std::vector<std::string> seeds;
  for (const std::string& file : files) {
    seeds.push_back(ReadFile(file));
    RunOne(seeds.back());
  }
  std::printf("standalone fuzz: replayed %zu corpus file(s)\n",
              seeds.size());
  if (seeds.empty()) seeds.emplace_back();  // mutate from the empty input
  uint64_t rng = 0x5eedu;
  for (long r = 0; r < runs; ++r) {
    std::string input = seeds[static_cast<size_t>(SplitMix64(&rng)) %
                              seeds.size()];
    const int stacked = 1 + static_cast<int>(SplitMix64(&rng) % 4);
    for (int m = 0; m < stacked; ++m) input = Mutate(input, &rng);
    RunOne(input);
  }
  std::printf("standalone fuzz: %ld mutation run(s), no crashes\n", runs);
  return 0;
}
