// Fuzz target: common/json parse → serialize → re-parse round-trip.
//
// The JSON parser is the first thing untrusted network bytes hit (every
// dpjoin_serve request is one JSON line), so it must never crash, never
// overflow, and — when it accepts an input — produce a serialization it
// accepts again, byte-identically (Serialize() is the wire format of every
// response and of the persisted ledger).

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/json.h"

namespace dpjoin_fuzz {

namespace {

[[noreturn]] void Fail(const char* what, const std::string& detail) {
  std::fprintf(stderr, "fuzz_json: %s\n%.512s\n", what, detail.c_str());
  std::abort();
}

}  // namespace

int FuzzJson(const uint8_t* data, size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);
  auto parsed = dpjoin::JsonValue::Parse(input);
  if (!parsed.ok()) return 0;  // rejecting garbage is fine — crashing isn't

  const std::string once = parsed->Serialize();
  auto reparsed = dpjoin::JsonValue::Parse(once);
  if (!reparsed.ok()) {
    Fail("accepted input, rejected own serialization", once);
  }
  const std::string twice = reparsed->Serialize();
  if (once != twice) {
    Fail("serialization is not a fixed point", once + "\n!=\n" + twice);
  }
  return 0;
}

}  // namespace dpjoin_fuzz

#ifndef DPJOIN_FUZZ_NO_ENTRY
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return dpjoin_fuzz::FuzzJson(data, size);
}
#endif
