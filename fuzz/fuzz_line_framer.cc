// Fuzz target: LineFramer '\n' framing, differential against a reference.
//
// The framer reassembles protocol lines from arbitrary TCP chunk splits.
// The fuzzer uses the first bytes of the input to derive an adversarial
// chunking schedule, feeds the rest through the framer, and checks the
// extracted lines against a trivially-correct whole-buffer reference:
// identical lines for ANY split, or the server's view of a request would
// depend on packet boundaries.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "net/line_framer.h"

namespace dpjoin_fuzz {

namespace {

[[noreturn]] void Fail(const char* what) {
  std::fprintf(stderr, "fuzz_line_framer: %s\n", what);
  std::abort();
}

// Whole-buffer reference: split on '\n', strip one trailing '\r'.
std::vector<std::string> ReferenceLines(const std::string& payload) {
  std::vector<std::string> lines;
  size_t start = 0;
  for (;;) {
    const size_t newline = payload.find('\n', start);
    if (newline == std::string::npos) break;
    size_t end = newline;
    if (end > start && payload[end - 1] == '\r') --end;
    lines.emplace_back(payload, start, end - start);
    start = newline + 1;
  }
  return lines;
}

}  // namespace

int FuzzLineFramer(const uint8_t* data, size_t size) {
  if (size < 2) return 0;
  // Chunk schedule: sizes cycle through (seed % k) + 1 derived values.
  const uint8_t a = data[0];
  const uint8_t b = data[1];
  const std::string payload(reinterpret_cast<const char*>(data + 2),
                            size - 2);

  // Cap well above the payload so overflow never triggers here; the
  // overflow path gets its own deterministic probe below.
  dpjoin::LineFramer framer(payload.size() + 16);
  std::vector<std::string> got;
  size_t pos = 0;
  size_t step = 0;
  while (pos < payload.size()) {
    const size_t want = 1 + ((a + step * (b | 1)) % 7);
    const size_t n = want < payload.size() - pos ? want
                                                 : payload.size() - pos;
    if (!framer.Append(payload.data() + pos, n)) {
      Fail("overflow below the configured cap");
    }
    framer.DrainLines(&got);
    pos += n;
    ++step;
  }
  framer.DrainLines(&got);

  const std::vector<std::string> want_lines = ReferenceLines(payload);
  if (got != want_lines) Fail("chunked framing diverged from reference");

  size_t tail = payload.size();
  const size_t last_newline = payload.rfind('\n');
  if (last_newline != std::string::npos) tail = payload.size() -
                                                (last_newline + 1);
  if (framer.tail_bytes() != tail) Fail("tail accounting diverged");

  // Overflow discipline: with a cap below the unterminated tail, Append
  // must latch the error and refuse further input.
  if (tail > 1) {
    dpjoin::LineFramer tight(tail - 1);
    const bool ok = tight.Append(payload.data(), payload.size());
    if (ok) Fail("oversized tail not reported");
    if (!tight.overflowed()) Fail("overflow state not latched");
    if (tight.Append(payload.data(), 1)) Fail("append after overflow");
  }
  return 0;
}

}  // namespace dpjoin_fuzz

#ifndef DPJOIN_FUZZ_NO_ENTRY
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return dpjoin_fuzz::FuzzLineFramer(data, size);
}
#endif
