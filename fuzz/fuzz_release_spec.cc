// Fuzz target: ReleaseSpec config parsing.
//
// Specs arrive over the wire (`release` requests embed them) and from user
// files, so the parser sees arbitrary bytes. Properties: never crash; when
// an input is accepted, the canonical form must (a) re-parse successfully,
// (b) canonicalize to itself, and (c) keep the same Hash() — the canonical
// string is the serving-cache key, so instability here silently splits or
// aliases cache entries.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "engine/release_spec.h"

namespace dpjoin_fuzz {

namespace {

[[noreturn]] void Fail(const char* what, const std::string& detail) {
  std::fprintf(stderr, "fuzz_release_spec: %s\n%.512s\n", what,
               detail.c_str());
  std::abort();
}

}  // namespace

int FuzzReleaseSpec(const uint8_t* data, size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);
  auto parsed = dpjoin::ParseReleaseSpec(input);
  if (!parsed.ok()) return 0;

  const std::string canonical = parsed->CanonicalString();
  auto reparsed = dpjoin::ParseReleaseSpec(canonical);
  if (!reparsed.ok()) {
    Fail("accepted input, rejected own canonical form", canonical);
  }
  if (reparsed->CanonicalString() != canonical) {
    Fail("canonical form is not a fixed point",
         canonical + "\n!=\n" + reparsed->CanonicalString());
  }
  if (reparsed->Hash() != parsed->Hash()) {
    Fail("hash changed across canonicalization", canonical);
  }
  return 0;
}

}  // namespace dpjoin_fuzz

#ifndef DPJOIN_FUZZ_NO_ENTRY
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return dpjoin_fuzz::FuzzReleaseSpec(data, size);
}
#endif
